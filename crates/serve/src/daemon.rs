//! The `ecmasd` line protocol: newline-delimited JSON over stdin/stdout.
//!
//! The daemon binary (`src/bin/ecmasd.rs` in the workspace root) is a
//! thin loop around [`Daemon`]: one request object per input line, one or
//! more response objects per output line. Keeping the protocol engine
//! here makes it testable without spawning a process.
//!
//! ## Requests
//!
//! | op       | fields |
//! |----------|--------|
//! | `submit` | a circuit source — `"qasm"` (inline source), `"file"` (path), or `"random"` (`{qubits, depth, parallelism, seed}`) — plus optional `"chip"`, `"model"`, `"deadline_ms"`, `"tag"`, `"analyze"` (run the static analyzer; the result line's report carries the diagnostics), and a defect mask: `"defects"` (explicit `"r,c;r,c"` coordinates) or `"defect_percent"` + `"defect_seed"` (seeded random dead tiles, capped so the circuit still fits) |
//! | `status` | `"job"` — non-blocking lifecycle probe |
//! | `cancel` | `"job"` — cooperative cancellation |
//! | `result` | `"job"` — blocking wait; emits the job's result line now |
//! | `drain`  | emit every unreported result (submission order) + a summary |
//! | `stats`  | non-blocking service + compile-cache counter snapshot |
//!
//! Job numbers are assigned sequentially from 1 in submission order, so a
//! stream producer can refer to its own jobs without reading responses.
//!
//! ## Responses
//!
//! Every response is one JSON object with an `"op"` key: `submitted`,
//! `status`, `cancel`, `result`, `drained`, `stats`, or `error`. A `result` line
//! for a completed job embeds the same `CompileReport` JSON object that
//! `ecmasc --json` emits (and that CI validates against the report
//! schema), including its per-job `"resources"` estimate; cancelled /
//! deadline-expired / failed jobs report a `"status"` of `cancelled` /
//! `deadline` / `error` instead. The `stats` line aggregates the
//! resource estimates of every completed job in a `"resources"` object
//! and the analyzer findings of analyze-mode jobs in a `"diagnostics"`
//! object (`errors`/`warnings`/`hints` counts). A `submit` whose QASM
//! source fails to parse gets an `error` line carrying a
//! `"diagnostics"` array with the `E010` finding and its line/column
//! span.

use std::time::Duration;

use ecmas_analyze::lint_qasm;
use ecmas_chip::{Chip, ChipError, CodeModel};
use ecmas_circuit::random::{layered, StressSpec, StressWorkload};
use ecmas_circuit::Circuit;
use ecmas_core::session::CompileOutcome;
use ecmas_core::{diagnostics_to_json, para_finding, Diagnostic, Severity};

use crate::job::{JobError, JobHandle, JobStatus};
use crate::json::{self, Value};
use crate::service::{CompileRequest, CompileService, ServiceConfig, SubmitError};

/// Hard cap on one protocol line: stdin is untrusted, and the daemon
/// must bound its allocations before parsing. The binary's reader
/// enforces the same cap without buffering the oversized line.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The chip families `ecmasc`/`ecmasd` can build per circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipKind {
    /// `Chip::min_viable` — the paper's minimum viable chip.
    Min,
    /// `Chip::four_x` — 4× the minimum resources.
    FourX,
    /// `Chip::congested` — double-side array, bandwidth-1 channels.
    Congested,
    /// `Chip::sufficient` for the circuit's profiled `ĝPM`.
    Sufficient,
}

impl ChipKind {
    /// Parses the CLI/protocol spelling (`min|4x|congested|sufficient`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "min" => Some(ChipKind::Min),
            "4x" => Some(ChipKind::FourX),
            "congested" => Some(ChipKind::Congested),
            "sufficient" => Some(ChipKind::Sufficient),
            _ => None,
        }
    }

    /// The CLI/protocol spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChipKind::Min => "min",
            ChipKind::FourX => "4x",
            ChipKind::Congested => "congested",
            ChipKind::Sufficient => "sufficient",
        }
    }

    /// Builds the chip of this family sized for `circuit`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`ChipError`].
    pub fn build(self, model: CodeModel, circuit: &Circuit) -> Result<Chip, ChipError> {
        let n = circuit.qubits();
        match self {
            ChipKind::Min => Chip::min_viable(model, n, 3),
            ChipKind::FourX => Chip::four_x(model, n, 3),
            ChipKind::Congested => Chip::congested(model, n, 3),
            ChipKind::Sufficient => {
                let gpm = para_finding(&circuit.dag()).gpm();
                Chip::sufficient(model, n, gpm.max(1), 3)
            }
        }
    }
}

/// Daemon defaults: the code model and chip family used when a submit
/// request does not override them, plus the service sizing.
#[derive(Clone, Copy, Debug)]
pub struct DaemonOptions {
    /// Default code model for submitted circuits.
    pub model: CodeModel,
    /// Default chip family, sized per circuit.
    pub chip: ChipKind,
    /// Worker-pool and queue sizing.
    pub service: ServiceConfig,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            model: CodeModel::DoubleDefect,
            chip: ChipKind::Min,
            // Unlike the embeddable `CompileService` (cache off unless
            // asked), a daemon serves a long-lived repetitive stream, so
            // the compile cache defaults on at a modest budget.
            service: ServiceConfig { cache_bytes: 64 * 1024 * 1024, ..ServiceConfig::default() },
        }
    }
}

enum EntryState {
    /// Job in flight; the handle owns the future result.
    Pending(JobHandle),
    /// Finished and reaped: the result line is already rendered and the
    /// heavyweight `EncodedCircuit` dropped; the line waits to be emitted.
    Ready { label: &'static str, line: String },
    /// Result line emitted; the label is the final protocol status.
    Reported(&'static str),
}

struct Entry {
    tag: Option<String>,
    name: String,
    qubits: usize,
    state: EntryState,
}

/// Running totals over the [`ResourceEstimate`]s of completed jobs,
/// reported in the `stats` line's `"resources"` object.
///
/// [`ResourceEstimate`]: ecmas_core::ResourceEstimate
#[derive(Clone, Copy, Debug, Default)]
struct ResourceTotals {
    jobs: u64,
    logical_qubits: u64,
    cycles: u64,
    space_time_volume: u64,
    stage_cost: u64,
    peak_channel_utilization_ppm: u64,
}

impl ResourceTotals {
    fn absorb(&mut self, r: &ecmas_core::ResourceEstimate) {
        self.jobs += 1;
        self.logical_qubits += r.logical_qubits as u64;
        self.cycles += r.cycles;
        self.space_time_volume += r.space_time_volume;
        self.stage_cost += r.stage_cost.profile + r.stage_cost.map + r.stage_cost.schedule;
        self.peak_channel_utilization_ppm =
            self.peak_channel_utilization_ppm.max(r.channel_peak_utilization_ppm);
    }
}

/// Running analyzer-finding counts over completed analyze-mode jobs,
/// reported in the `stats` line's `"diagnostics"` object.
#[derive(Clone, Copy, Debug, Default)]
struct DiagTotals {
    errors: u64,
    warnings: u64,
    hints: u64,
}

impl DiagTotals {
    fn absorb(&mut self, diags: &[Diagnostic]) {
        for d in diags {
            match d.severity {
                Severity::Error => self.errors += 1,
                Severity::Warning => self.warnings += 1,
                Severity::Hint => self.hints += 1,
            }
        }
    }
}

/// The protocol engine: owns the [`CompileService`] and the job registry.
pub struct Daemon {
    options: DaemonOptions,
    service: CompileService,
    entries: Vec<Entry>,
    totals: ResourceTotals,
    diag_totals: DiagTotals,
}

impl Daemon {
    /// Starts the service with the given options.
    #[must_use]
    pub fn new(options: DaemonOptions) -> Self {
        Daemon {
            options,
            service: CompileService::new(options.service),
            entries: Vec::new(),
            totals: ResourceTotals::default(),
            diag_totals: DiagTotals::default(),
        }
    }

    /// Jobs submitted so far.
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.entries.len()
    }

    /// `true` while some job's result has not been reported yet — the
    /// binary's cue to [`drain`](Self::drain) at EOF.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.entries.iter().any(|e| !matches!(e.state, EntryState::Reported(_)))
    }

    /// Converts every finished-but-unreported job's outcome into its
    /// rendered result line right away, dropping the schedule. This is
    /// what keeps daemon memory bounded on long job streams: without it,
    /// every completed `EncodedCircuit` would sit in its slot until the
    /// final drain. Runs on every handled line.
    fn reap(&mut self) {
        for index in 0..self.entries.len() {
            if !matches!(self.entries[index].state, EntryState::Pending(_)) {
                continue;
            }
            let EntryState::Pending(handle) =
                std::mem::replace(&mut self.entries[index].state, EntryState::Reported("done"))
            else {
                unreachable!("matched Pending above");
            };
            self.entries[index].state = match handle.try_wait() {
                Ok(result) => {
                    if let Ok(outcome) = &result {
                        self.totals.absorb(&outcome.report.resources);
                        self.diag_totals.absorb(&outcome.report.diagnostics);
                    }
                    let entry = &self.entries[index];
                    let (label, line) =
                        result_line(index, entry.tag.as_deref(), &entry.name, entry.qubits, result);
                    EntryState::Ready { label, line }
                }
                Err(handle) => EntryState::Pending(handle),
            };
        }
    }

    /// Handles one input line, returning the response lines to emit.
    /// Blank lines produce no response.
    pub fn handle_line(&mut self, line: &str) -> Vec<String> {
        if line.len() > MAX_LINE_BYTES {
            // Refuse before parsing: an unbounded line is an unbounded
            // allocation, and stdin is untrusted.
            return vec![error_line(&format!(
                "line of {} bytes exceeds the {MAX_LINE_BYTES}-byte cap",
                line.len()
            ))];
        }
        let line = line.trim();
        if line.is_empty() {
            return Vec::new();
        }
        self.reap();
        let request = match json::parse(line) {
            Ok(v) => v,
            Err(e) => return vec![error_line(&e.to_string())],
        };
        let Some(op) = request.get("op").and_then(Value::as_str) else {
            return vec![error_line("missing \"op\"")];
        };
        match op {
            "submit" => self.submit(&request),
            "status" => self.status(&request),
            "cancel" => self.cancel(&request),
            "result" => self.result(&request),
            "drain" => {
                // `{"op":"drain","final":true}` additionally stops
                // admission for good: the service finishes everything in
                // flight and later submits get a "service draining"
                // error. Without the flag, drain only flushes results.
                if request.get("final").and_then(Value::as_bool).unwrap_or(false) {
                    self.service.drain();
                }
                self.drain()
            }
            "stats" => vec![self.stats_line()],
            other => vec![error_line(&format!("unknown op {other:?}"))],
        }
    }

    /// Emits every unreported result in submission order, then a summary
    /// line. Called on an explicit `drain` op and by the binary at EOF.
    pub fn drain(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        for index in 0..self.entries.len() {
            if !matches!(self.entries[index].state, EntryState::Reported(_)) {
                lines.push(self.take_result(index));
            }
        }
        let mut done = 0usize;
        let mut cancelled = 0usize;
        let mut deadline = 0usize;
        let mut failed = 0usize;
        for entry in &self.entries {
            match entry.state {
                EntryState::Reported("done") => done += 1,
                EntryState::Reported("cancelled") => cancelled += 1,
                EntryState::Reported("deadline") => deadline += 1,
                EntryState::Reported(_) => failed += 1,
                EntryState::Pending(_) | EntryState::Ready { .. } => unreachable!("drained above"),
            }
        }
        lines.push(format!(
            "{{\"op\":\"drained\",\"jobs\":{},\"done\":{done},\"cancelled\":{cancelled},\
             \"deadline\":{deadline},\"failed\":{failed}}}",
            self.entries.len()
        ));
        lines
    }

    fn submit(&mut self, request: &Value) -> Vec<String> {
        let tag = request.get("tag").and_then(Value::as_str).map(str::to_string);
        let circuit = match build_circuit(request) {
            Ok(c) => c,
            Err(e) => return vec![e.into_line()],
        };
        let model = match request.get("model").and_then(Value::as_str) {
            None => self.options.model,
            Some("dd") | Some("double-defect") => CodeModel::DoubleDefect,
            Some("ls") | Some("lattice-surgery") => CodeModel::LatticeSurgery,
            Some(other) => return vec![error_line(&format!("unknown model {other:?}"))],
        };
        let chip_kind = match request.get("chip").and_then(Value::as_str) {
            None => self.options.chip,
            Some(s) => match ChipKind::parse(s) {
                Some(kind) => kind,
                None => return vec![error_line(&format!("unknown chip {s:?}"))],
            },
        };
        let chip = match chip_kind.build(model, &circuit) {
            Ok(chip) => chip,
            Err(e) => return vec![error_line(&format!("chip construction failed: {e}"))],
        };
        let chip = match apply_defect_fields(chip, request, circuit.qubits()) {
            Ok(chip) => chip,
            Err(message) => return vec![error_line(&message)],
        };
        let name = circuit.name().to_string();
        let qubits = circuit.qubits();
        let mut compile_request = CompileRequest::new(circuit, chip);
        if let Some(ms) = request.get("deadline_ms").and_then(Value::as_u64) {
            compile_request = compile_request.with_deadline(Duration::from_millis(ms));
        }
        if let Some(analyze) = request.get("analyze").and_then(Value::as_bool) {
            compile_request = compile_request.with_analyze(analyze);
        }
        match self.service.submit(compile_request) {
            Ok(handle) => {
                self.entries.push(Entry {
                    tag: tag.clone(),
                    name: name.clone(),
                    qubits,
                    state: EntryState::Pending(handle),
                });
                let job = self.entries.len();
                vec![format!(
                    "{{\"op\":\"submitted\",\"job\":{job}{},\"circuit\":\"{}\",\
                     \"qubits\":{qubits},\"queued\":{}}}",
                    tag_field(tag.as_deref()),
                    json::escape(&name),
                    self.service.queued()
                )]
            }
            Err(SubmitError::Saturated(_)) => vec![error_line("queue saturated")],
            Err(SubmitError::Overloaded { retry_after_ms, .. }) => vec![format!(
                "{{\"op\":\"error\",\"error\":\"overloaded\",\"retry_after_ms\":{retry_after_ms}}}"
            )],
            Err(SubmitError::Draining(_)) => vec![error_line("service draining")],
        }
    }

    fn job_index(&self, request: &Value) -> Result<usize, String> {
        let job = request
            .get("job")
            .and_then(Value::as_usize)
            .ok_or_else(|| "missing or invalid \"job\"".to_string())?;
        if job == 0 || job > self.entries.len() {
            return Err(format!("no such job {job}"));
        }
        Ok(job - 1)
    }

    fn status(&mut self, request: &Value) -> Vec<String> {
        let index = match self.job_index(request) {
            Ok(i) => i,
            Err(message) => return vec![error_line(&message)],
        };
        let entry = &self.entries[index];
        let status = match &entry.state {
            EntryState::Pending(handle) => match handle.status() {
                JobStatus::Queued => "queued",
                JobStatus::Running => "running",
                JobStatus::Finished => "finished",
            },
            EntryState::Ready { .. } => "finished",
            EntryState::Reported(label) => label,
        };
        vec![format!(
            "{{\"op\":\"status\",\"job\":{}{},\"status\":\"{status}\"}}",
            index + 1,
            tag_field(entry.tag.as_deref())
        )]
    }

    fn cancel(&mut self, request: &Value) -> Vec<String> {
        let index = match self.job_index(request) {
            Ok(i) => i,
            Err(message) => return vec![error_line(&message)],
        };
        let entry = &self.entries[index];
        let accepted = match &entry.state {
            EntryState::Pending(handle) => handle.cancel(),
            EntryState::Ready { .. } | EntryState::Reported(_) => false,
        };
        vec![format!(
            "{{\"op\":\"cancel\",\"job\":{}{},\"accepted\":{accepted}}}",
            index + 1,
            tag_field(entry.tag.as_deref())
        )]
    }

    fn result(&mut self, request: &Value) -> Vec<String> {
        let index = match self.job_index(request) {
            Ok(i) => i,
            Err(message) => return vec![error_line(&message)],
        };
        if let EntryState::Reported(label) = self.entries[index].state {
            return vec![error_line(&format!("job {} already reported ({label})", index + 1))];
        }
        vec![self.take_result(index)]
    }

    /// Renders the `stats` response: submission/lifecycle tallies, the
    /// service-wide compile-cache counters, and aggregate resource
    /// totals over every *completed* job (sums of logical qubits,
    /// cycles, space–time volume, and stage cost; max of per-job peak
    /// channel utilization). Non-blocking — in-flight jobs count as
    /// pending and are not yet in the totals. With the cache disabled
    /// the `"cache"` object is present with `"enabled":false` and zeroed
    /// counters, so consumers can parse one shape unconditionally.
    fn stats_line(&self) -> String {
        let mut pending = 0usize;
        let mut done = 0usize;
        let mut cancelled = 0usize;
        let mut deadline = 0usize;
        let mut failed = 0usize;
        for entry in &self.entries {
            match entry.state {
                EntryState::Pending(_) => pending += 1,
                EntryState::Ready { label, .. } | EntryState::Reported(label) => match label {
                    "done" => done += 1,
                    "cancelled" => cancelled += 1,
                    "deadline" => deadline += 1,
                    _ => failed += 1,
                },
            }
        }
        let cache = self.service.cache_stats();
        let enabled = cache.is_some();
        let c = cache.unwrap_or_default();
        let sup = self.service.supervisor_stats();
        let faults = self.service.fault_stats();
        let f = faults.unwrap_or_default();
        let retries = self.service.retry_stats();
        format!(
            "{{\"op\":\"stats\",\"jobs\":{},\"pending\":{pending},\"done\":{done},\
             \"cancelled\":{cancelled},\"deadline\":{deadline},\"failed\":{failed},\
             \"queued\":{},\"workers\":{},\"cache\":{{\"enabled\":{enabled},\
             \"hits\":{},\"misses\":{},\"stage_hits\":{},\"evictions\":{},\
             \"resident_bytes\":{},\"coalesced_waits\":{},\"entries\":{}}},\
             \"supervisor\":{{\"workers\":{},\"spawned\":{},\"panics\":{},\
             \"respawns\":{},\"requeued\":{}}},\
             \"faults\":{{\"enabled\":{},\"spurious_errors\":{},\"panics\":{},\
             \"latencies\":{},\"poisoned\":{}}},\
             \"retries\":{{\"spent\":{},\"budget\":{}}},\
             \"shed\":{},\"draining\":{},\
             \"resources\":{{\"jobs\":{},\"logical_qubits\":{},\"cycles\":{},\
             \"space_time_volume\":{},\"stage_cost\":{},\
             \"peak_channel_utilization_ppm\":{}}},\
             \"diagnostics\":{{\"errors\":{},\"warnings\":{},\"hints\":{}}}}}",
            self.entries.len(),
            self.service.queued(),
            self.service.workers(),
            c.hits,
            c.misses,
            c.stage_hits,
            c.evictions,
            c.resident_bytes,
            c.coalesced_waits,
            c.entries,
            sup.workers,
            sup.spawned,
            sup.panics,
            sup.respawns,
            sup.requeued,
            faults.is_some(),
            f.spurious_errors,
            f.panics,
            f.latencies,
            f.poisoned,
            retries.spent,
            retries.budget,
            self.service.shed_count(),
            self.service.is_draining(),
            self.totals.jobs,
            self.totals.logical_qubits,
            self.totals.cycles,
            self.totals.space_time_volume,
            self.totals.stage_cost,
            self.totals.peak_channel_utilization_ppm,
            self.diag_totals.errors,
            self.diag_totals.warnings,
            self.diag_totals.hints,
        )
    }

    /// Reports job `index` (it must not be reported yet): waits if the
    /// job is still in flight, records its final status, and returns its
    /// result line.
    fn take_result(&mut self, index: usize) -> String {
        let state = std::mem::replace(&mut self.entries[index].state, EntryState::Reported("done"));
        let (label, line) = match state {
            EntryState::Pending(handle) => {
                let result = handle.wait();
                if let Ok(outcome) = &result {
                    self.totals.absorb(&outcome.report.resources);
                    self.diag_totals.absorb(&outcome.report.diagnostics);
                }
                let entry = &self.entries[index];
                result_line(index, entry.tag.as_deref(), &entry.name, entry.qubits, result)
            }
            EntryState::Ready { label, line } => (label, line),
            EntryState::Reported(_) => unreachable!("caller checked the entry is unreported"),
        };
        self.entries[index].state = EntryState::Reported(label);
        line
    }
}

/// Renders one job's result line and its final protocol status label.
fn result_line(
    index: usize,
    tag: Option<&str>,
    name: &str,
    qubits: usize,
    result: Result<CompileOutcome, JobError>,
) -> (&'static str, String) {
    let head = format!(
        "{{\"op\":\"result\",\"job\":{}{},\"circuit\":\"{}\",\"qubits\":{qubits}",
        index + 1,
        tag_field(tag),
        json::escape(name),
    );
    let (label, body) = match result {
        Ok(CompileOutcome { report, .. }) => {
            ("done", format!(",\"status\":\"done\",\"report\":{}}}", report.to_json()))
        }
        Err(JobError::Cancelled) => ("cancelled", ",\"status\":\"cancelled\"}".to_string()),
        Err(e @ JobError::DeadlineExceeded { .. }) => (
            "deadline",
            format!(",\"status\":\"deadline\",\"error\":\"{}\"}}", json::escape(&e.to_string())),
        ),
        Err(e) => (
            "error",
            format!(",\"status\":\"error\",\"error\":\"{}\"}}", json::escape(&e.to_string())),
        ),
    };
    (label, format!("{head}{body}"))
}

fn tag_field(tag: Option<&str>) -> String {
    tag.map_or_else(String::new, |t| format!(",\"tag\":\"{}\"", json::escape(t)))
}

fn error_line(message: &str) -> String {
    format!("{{\"op\":\"error\",\"error\":\"{}\"}}", json::escape(message))
}

/// The error response the `ecmasd` binary emits for a stdin line it
/// refused to buffer past [`MAX_LINE_BYTES`] (the line itself was
/// discarded unread, so [`Daemon::handle_line`] never sees it).
#[must_use]
pub fn oversized_line_error() -> String {
    error_line(&format!("line exceeds the {MAX_LINE_BYTES}-byte cap"))
}

/// Parses an explicit defect-mask spec: semicolon-separated `row,col`
/// tile coordinates, e.g. `"1,2;3,0"`. Shared by the `ecmasd` protocol
/// (`"defects"` field) and `ecmasc --defects`. Coordinates are validated
/// against the chip later (by [`Chip::with_defects`]), not here.
///
/// # Errors
///
/// Returns a human-readable message for malformed input.
pub fn parse_defect_spec(spec: &str) -> Result<Vec<(usize, usize)>, String> {
    let mut coords = Vec::new();
    for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let (row, col) =
            part.split_once(',').ok_or_else(|| format!("defect {part:?} is not \"row,col\""))?;
        let parse = |s: &str, what: &str| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("defect {part:?} has a non-integer {what}"))
        };
        coords.push((parse(row, "row")?, parse(col, "col")?));
    }
    Ok(coords)
}

/// Applies a submit request's optional defect fields to the built chip:
/// `"defects"` (explicit coordinates) and/or `"defect_percent"` +
/// `"defect_seed"` (seeded random dead tiles, capped so `qubits` still
/// fit on the live tiles). Out-of-range coordinates and over-defected
/// chips are reported as errors, not deferred to a compile failure.
fn apply_defect_fields(mut chip: Chip, request: &Value, qubits: usize) -> Result<Chip, String> {
    if let Some(spec) = request.get("defects").and_then(Value::as_str) {
        let coords = parse_defect_spec(spec)?;
        chip = chip.with_defects(&coords).map_err(|e| e.to_string())?;
    }
    if let Some(percent) = request.get("defect_percent").and_then(Value::as_u64) {
        if percent > 100 {
            return Err(format!("defect_percent {percent} exceeds 100"));
        }
        let seed = request.get("defect_seed").and_then(Value::as_u64).unwrap_or(0);
        let slots = chip.tile_slots();
        // Cap the dead count so the circuit still fits: a stress knob
        // should degrade the chip, not reject the job.
        let want = (slots * usize::try_from(percent).expect("<= 100")) / 100;
        let cap = chip.live_tiles().saturating_sub(qubits);
        chip.seed_defects(want.min(cap), seed);
    }
    if qubits > chip.live_tiles() {
        return Err(format!(
            "defect mask leaves {} live tiles for {qubits} qubits",
            chip.live_tiles()
        ));
    }
    Ok(chip)
}

/// A circuit-construction failure: the message every error line
/// carries, plus structured analyzer diagnostics when the source was
/// QASM (an `E010` with the line/column span of the parse failure).
struct BuildError {
    message: String,
    diagnostics: Vec<Diagnostic>,
}

impl BuildError {
    fn plain(message: impl Into<String>) -> Self {
        BuildError { message: message.into(), diagnostics: Vec::new() }
    }

    /// Renders the protocol `error` line, appending a `"diagnostics"`
    /// array when structured findings exist.
    fn into_line(self) -> String {
        if self.diagnostics.is_empty() {
            error_line(&self.message)
        } else {
            format!(
                "{{\"op\":\"error\",\"error\":\"{}\",\"diagnostics\":{}}}",
                json::escape(&self.message),
                diagnostics_to_json(&self.diagnostics),
            )
        }
    }
}

impl From<String> for BuildError {
    fn from(message: String) -> Self {
        BuildError::plain(message)
    }
}

/// Parses QASM through the analyzer front-end so a failure carries its
/// `E010` diagnostic (with span) alongside the human-readable message.
fn parse_qasm_source(source: &str, origin: &str) -> Result<Circuit, BuildError> {
    match lint_qasm(source) {
        (Some(circuit), _) => Ok(circuit),
        (None, diagnostics) => {
            let detail = diagnostics.first().map_or_else(String::new, ToString::to_string);
            Err(BuildError { message: format!("{origin}: {detail}"), diagnostics })
        }
    }
}

/// Builds the circuit named by a submit request's source field.
fn build_circuit(request: &Value) -> Result<Circuit, BuildError> {
    if let Some(source) = request.get("qasm").and_then(Value::as_str) {
        return parse_qasm_source(source, "qasm");
    }
    if let Some(path) = request.get("file").and_then(Value::as_str) {
        let source = std::fs::read_to_string(path)
            .map_err(|e| BuildError::plain(format!("cannot read {path}: {e}")))?;
        return parse_qasm_source(&source, path);
    }
    if let Some(random) = request.get("random") {
        let field = |key: &str| {
            random
                .get(key)
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("random source needs a non-negative integer {key:?}"))
        };
        let qubits = field("qubits")?;
        let depth = field("depth")?;
        let parallelism = field("parallelism")?;
        let seed = random.get("seed").and_then(Value::as_u64).unwrap_or(0);
        if parallelism == 0 || 2 * parallelism > qubits || depth == 0 {
            return Err(BuildError::plain(format!(
                "random source out of range: qubits={qubits} depth={depth} \
                 parallelism={parallelism}"
            )));
        }
        return Ok(layered(qubits, depth, parallelism, seed));
    }
    Err(BuildError::plain("submit needs a circuit source: \"qasm\", \"file\", or \"random\""))
}

/// Renders a seeded [`StressWorkload`] as an `ecmasd` input stream:
/// one `submit` per job (via the `random` source, so the daemon
/// regenerates the identical circuit), a `cancel` after every
/// `cancel_every`-th submit (targeting the job just submitted — it is
/// honored whenever the job is still queued when the daemon reads the
/// next line), and a final `drain`.
///
/// With a nonzero `spec.defect_percent` every submit also carries
/// `"defect_percent"` and its per-job `"defect_seed"`, so each job's
/// target chip arrives with that fraction of tiles dead. At `0` (the
/// default) the emitted stream is byte-identical to the legacy format.
#[must_use]
pub fn stress_stream(
    spec: &StressSpec,
    cancel_every: Option<usize>,
    deadline_ms: Option<u64>,
) -> String {
    let workload = StressWorkload::new(spec);
    let mut out = String::new();
    let deadline = deadline_ms.map_or_else(String::new, |ms| format!(",\"deadline_ms\":{ms}"));
    for (i, job) in workload.jobs().iter().enumerate() {
        let number = i + 1;
        let defects = if workload.defect_percent() > 0 {
            format!(
                ",\"defect_percent\":{},\"defect_seed\":{}",
                workload.defect_percent(),
                workload.defect_seed(i)
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{{\"op\":\"submit\",\"tag\":\"stress{i}\",\"random\":{{\"qubits\":{},\
             \"depth\":{},\"parallelism\":{},\"seed\":{}}}{defects}{deadline}}}\n",
            job.qubits, job.depth, job.parallelism, job.seed
        ));
        if let Some(every) = cancel_every {
            if every > 0 && number % every == 0 {
                out.push_str(&format!("{{\"op\":\"cancel\",\"job\":{number}}}\n"));
            }
        }
    }
    out.push_str("{\"op\":\"drain\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Backpressure;

    fn daemon(workers: usize) -> Daemon {
        Daemon::new(DaemonOptions {
            model: CodeModel::LatticeSurgery,
            chip: ChipKind::Min,
            service: ServiceConfig {
                workers,
                queue_capacity: 64,
                backpressure: Backpressure::Block,
                ..ServiceConfig::default()
            },
        })
    }

    fn one(lines: Vec<String>) -> Value {
        assert_eq!(lines.len(), 1, "{lines:?}");
        json::parse(&lines[0]).expect("response is valid JSON")
    }

    #[test]
    fn submit_status_result_roundtrip() {
        let mut d = daemon(2);
        let resp = one(d.handle_line(
            r#"{"op":"submit","tag":"t1","random":{"qubits":10,"depth":8,"parallelism":2,"seed":5}}"#,
        ));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("submitted"));
        assert_eq!(resp.get("job").unwrap().as_u64(), Some(1));
        assert_eq!(resp.get("tag").unwrap().as_str(), Some("t1"));

        let status = one(d.handle_line(r#"{"op":"status","job":1}"#));
        assert!(matches!(
            status.get("status").unwrap().as_str(),
            Some("queued" | "running" | "finished")
        ));

        let result = one(d.handle_line(r#"{"op":"result","job":1}"#));
        assert_eq!(result.get("op").unwrap().as_str(), Some("result"));
        assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
        let report = result.get("report").expect("report embedded");
        assert!(report.get("cycles").unwrap().as_u64().unwrap() >= 8);
        assert!(report.get("router").is_some());

        // Second take is a protocol error, and the status is now final.
        let again = one(d.handle_line(r#"{"op":"result","job":1}"#));
        assert_eq!(again.get("op").unwrap().as_str(), Some("error"));
        let status = one(d.handle_line(r#"{"op":"status","job":1}"#));
        assert_eq!(status.get("status").unwrap().as_str(), Some("done"));
    }

    #[test]
    fn qasm_source_and_drain_summary() {
        let mut d = daemon(1);
        let qasm = "OPENQASM 2.0;\nqreg q[3];\ncx q[0],q[1];\ncx q[1],q[2];\n";
        let line = format!(
            "{{\"op\":\"submit\",\"qasm\":\"{}\"}}",
            qasm.replace('\n', "\\n").replace('"', "\\\"")
        );
        one(d.handle_line(&line));
        let lines = d.drain();
        assert_eq!(lines.len(), 2, "{lines:?}");
        let result = json::parse(&lines[0]).unwrap();
        assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(result.get("qubits").unwrap().as_u64(), Some(3));
        let summary = json::parse(&lines[1]).unwrap();
        assert_eq!(summary.get("op").unwrap().as_str(), Some("drained"));
        assert_eq!(summary.get("jobs").unwrap().as_u64(), Some(1));
        assert_eq!(summary.get("done").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn malformed_lines_report_errors_not_panics() {
        let mut d = daemon(1);
        for bad in [
            "not json",
            "{\"no\":\"op\"}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"submit\"}",
            "{\"op\":\"submit\",\"random\":{\"qubits\":4,\"depth\":3,\"parallelism\":9}}",
            "{\"op\":\"status\",\"job\":99}",
            "{\"op\":\"result\"}",
            "{\"op\":\"submit\",\"random\":{\"qubits\":4,\"depth\":3,\"parallelism\":1},\
             \"chip\":\"warp\"}",
            "{\"op\":\"submit\",\"random\":{\"qubits\":4,\"depth\":3,\"parallelism\":1},\
             \"model\":\"xx\"}",
        ] {
            let resp = one(d.handle_line(bad));
            assert_eq!(resp.get("op").unwrap().as_str(), Some("error"), "{bad}");
        }
        assert!(d.handle_line("").is_empty());
        assert_eq!(d.submitted(), 0);
    }

    #[test]
    fn stats_reports_zeroed_disabled_cache() {
        let mut d = daemon(1);
        let stats = one(d.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("op").unwrap().as_str(), Some("stats"));
        assert_eq!(stats.get("jobs").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("workers").unwrap().as_u64(), Some(1));
        let cache = stats.get("cache").expect("cache object present even when disabled");
        assert_eq!(cache.get("enabled").unwrap().as_bool(), Some(false));
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(0));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn stats_counts_cache_hits_on_duplicate_submits() {
        // Default daemon options enable the cache.
        let mut d = Daemon::new(DaemonOptions::default());
        let submit = r#"{"op":"submit","random":{"qubits":8,"depth":6,"parallelism":2,"seed":11}}"#;
        for _ in 0..3 {
            let resp = one(d.handle_line(submit));
            assert_eq!(resp.get("op").unwrap().as_str(), Some("submitted"));
        }
        let lines = d.drain();
        assert_eq!(lines.len(), 4, "{lines:?}");
        for line in &lines[..3] {
            let result = json::parse(line).unwrap();
            assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
        }
        let stats = one(d.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("done").unwrap().as_u64(), Some(3));
        let cache = stats.get("cache").expect("cache object");
        assert_eq!(cache.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        let hits = cache.get("hits").unwrap().as_u64().unwrap();
        let coalesced = cache.get("coalesced_waits").unwrap().as_u64().unwrap();
        assert_eq!(hits + coalesced, 2, "duplicates served from the cache");
        assert!(cache.get("resident_bytes").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn defect_fields_shape_the_submitted_chip() {
        let mut d = daemon(1);
        // Explicit coordinates: compiles fine on the remaining live tiles.
        let resp = one(d.handle_line(
            r#"{"op":"submit","random":{"qubits":4,"depth":4,"parallelism":1,"seed":1},"chip":"congested","defects":"0,0;1,1"}"#,
        ));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("submitted"));
        let result = one(d.handle_line(r#"{"op":"result","job":1}"#));
        assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
        let resources = result.get("report").unwrap().get("resources").expect("resources");
        let live = resources.get("live_tiles").unwrap().as_u64().unwrap();
        let slots = live + 2;
        assert!(slots >= 8, "congested chip for 4 qubits has at least 8 slots");

        // Out-of-range coordinates: a clear error, not a job failure.
        let resp = one(d.handle_line(
            r#"{"op":"submit","random":{"qubits":4,"depth":4,"parallelism":1,"seed":1},"defects":"99,0"}"#,
        ));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("error"));
        assert!(resp.get("error").unwrap().as_str().unwrap().contains("outside"));

        // Malformed spec.
        let resp = one(d.handle_line(
            r#"{"op":"submit","random":{"qubits":4,"depth":4,"parallelism":1,"seed":1},"defects":"1;2"}"#,
        ));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("error"));

        // A mask that leaves no room for the circuit.
        let resp = one(d.handle_line(
            r#"{"op":"submit","random":{"qubits":4,"depth":4,"parallelism":1,"seed":1},"defects":"0,0;0,1;1,0"}"#,
        ));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("error"));
        assert!(resp.get("error").unwrap().as_str().unwrap().contains("live tiles"));
    }

    #[test]
    fn seeded_defect_percent_caps_to_keep_the_job_viable() {
        let mut d = daemon(1);
        // 90% dead on a min chip would leave too few tiles; the cap must
        // keep exactly enough live tiles for the circuit.
        let resp = one(d.handle_line(
            r#"{"op":"submit","random":{"qubits":6,"depth":5,"parallelism":2,"seed":9},"chip":"congested","defect_percent":90,"defect_seed":7}"#,
        ));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("submitted"), "{resp:?}");
        let result = one(d.handle_line(r#"{"op":"result","job":1}"#));
        assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
        let resources = result.get("report").unwrap().get("resources").expect("resources");
        assert_eq!(resources.get("logical_qubits").unwrap().as_u64(), Some(6));
        assert_eq!(resources.get("live_tiles").unwrap().as_u64(), Some(6), "capped at qubits");

        // Over 100% is rejected up front.
        let resp = one(d.handle_line(
            r#"{"op":"submit","random":{"qubits":6,"depth":5,"parallelism":2,"seed":9},"defect_percent":101}"#,
        ));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("error"));
    }

    #[test]
    fn stats_aggregates_completed_resources() {
        let mut d = daemon(2);
        let before = one(d.handle_line(r#"{"op":"stats"}"#));
        let resources = before.get("resources").expect("resources object always present");
        assert_eq!(resources.get("jobs").unwrap().as_u64(), Some(0));
        assert_eq!(resources.get("space_time_volume").unwrap().as_u64(), Some(0));

        one(d.handle_line(
            r#"{"op":"submit","random":{"qubits":8,"depth":6,"parallelism":2,"seed":2}}"#,
        ));
        one(d.handle_line(
            r#"{"op":"submit","random":{"qubits":10,"depth":8,"parallelism":3,"seed":3}}"#,
        ));
        d.drain();
        let stats = one(d.handle_line(r#"{"op":"stats"}"#));
        let resources = stats.get("resources").expect("resources object");
        assert_eq!(resources.get("jobs").unwrap().as_u64(), Some(2));
        assert_eq!(resources.get("logical_qubits").unwrap().as_u64(), Some(18));
        let cycles = resources.get("cycles").unwrap().as_u64().unwrap();
        assert!(cycles >= 6 + 8, "summed cycles cover both jobs");
        let stv = resources.get("space_time_volume").unwrap().as_u64().unwrap();
        assert!(stv >= 8 * 6 + 10 * 8);
        assert!(resources.get("stage_cost").unwrap().as_u64().unwrap() > 0);
        assert!(
            resources.get("peak_channel_utilization_ppm").unwrap().as_u64().unwrap() > 0,
            "routed jobs have a busiest cycle"
        );
    }

    #[test]
    fn analyze_mode_fills_report_diagnostics_and_stats() {
        let mut d = daemon(1);
        // 6 declared qubits, only 4 used → the analyzer reports W001
        // (plus schedule hints); without "analyze" the array is empty.
        let qasm = "OPENQASM 2.0;\\nqreg q[6];\\ncx q[0],q[1];\\ncx q[2],q[3];\\ncx q[1],q[2];\\n";
        one(d.handle_line(&format!("{{\"op\":\"submit\",\"qasm\":\"{qasm}\"}}")));
        one(d.handle_line(&format!("{{\"op\":\"submit\",\"qasm\":\"{qasm}\",\"analyze\":true}}")));

        let plain = one(d.handle_line(r#"{"op":"result","job":1}"#));
        let diags = plain.get("report").unwrap().get("diagnostics").expect("key always present");
        assert_eq!(diags.as_array().map(<[Value]>::len), Some(0), "no analyze: empty array");

        let analyzed = one(d.handle_line(r#"{"op":"result","job":2}"#));
        assert_eq!(analyzed.get("status").unwrap().as_str(), Some("done"));
        let diags = analyzed.get("report").unwrap().get("diagnostics").unwrap();
        let items = diags.as_array().expect("diagnostics array");
        let codes: Vec<&str> =
            items.iter().filter_map(|d| d.get("code").and_then(Value::as_str)).collect();
        assert!(codes.contains(&"W001"), "unused qubits flagged: {codes:?}");
        assert!(
            !items.iter().any(|d| d.get("severity").and_then(Value::as_str) == Some("error")),
            "a valid compile must carry no error diagnostics"
        );

        let stats = one(d.handle_line(r#"{"op":"stats"}"#));
        let totals = stats.get("diagnostics").expect("diagnostics totals object");
        assert_eq!(totals.get("errors").unwrap().as_u64(), Some(0));
        assert!(totals.get("warnings").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn malformed_qasm_submit_carries_e010_span() {
        let mut d = daemon(1);
        // Line 3, col 7: q[9] is out of range for q[2].
        let resp = one(d.handle_line(
            "{\"op\":\"submit\",\"qasm\":\"OPENQASM 2.0;\\nqreg q[2];\\nh   q[9];\\n\"}",
        ));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("error"));
        let diags = resp.get("diagnostics").expect("structured qasm diagnostics");
        let items = diags.as_array().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].get("code").unwrap().as_str(), Some("E010"));
        let span = items[0].get("span").expect("span present");
        assert_eq!(span.get("line").unwrap().as_u64(), Some(3));
        assert_eq!(span.get("col").unwrap().as_u64(), Some(7));
        // Lexer garbage reachable from stdin: still a structured error.
        let resp = one(d.handle_line("{\"op\":\"submit\",\"qasm\":\"qreg q[2]; @\"}"));
        assert_eq!(resp.get("op").unwrap().as_str(), Some("error"));
        let items = resp.get("diagnostics").unwrap().as_array().unwrap();
        assert_eq!(items[0].get("code").unwrap().as_str(), Some("E010"));
    }

    #[test]
    fn defect_spec_parses_and_rejects() {
        assert_eq!(parse_defect_spec("1,2;3,0").unwrap(), vec![(1, 2), (3, 0)]);
        assert_eq!(parse_defect_spec(" 1 , 2 ; ").unwrap(), vec![(1, 2)]);
        assert_eq!(parse_defect_spec("").unwrap(), vec![]);
        assert!(parse_defect_spec("7").is_err());
        assert!(parse_defect_spec("a,b").is_err());
        assert!(parse_defect_spec("1,-2").is_err());
    }

    #[test]
    fn stress_stream_defect_knob_is_optional_and_seeded() {
        let base = StressSpec { jobs: 5, ..StressSpec::new(5, 16, 3) };
        let legacy = stress_stream(&base, None, None);
        assert!(!legacy.contains("defect"), "0% emits the legacy byte stream");

        let spec = StressSpec { defect_percent: 10, ..base };
        let stream = stress_stream(&spec, None, None);
        assert_eq!(stream, stress_stream(&spec, None, None));
        let workload = StressWorkload::new(&spec);
        for (i, line) in stream.lines().take(5).enumerate() {
            let v = json::parse(line).expect("valid JSON");
            assert_eq!(v.get("defect_percent").unwrap().as_u64(), Some(10));
            assert_eq!(v.get("defect_seed").unwrap().as_u64(), Some(workload.defect_seed(i)));
        }
        // And a daemon accepts the whole defective stream.
        let mut d = daemon(2);
        let mut lines = Vec::new();
        for line in stream.lines() {
            lines.extend(d.handle_line(line));
        }
        let summary = json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(summary.get("op").unwrap().as_str(), Some("drained"));
        assert_eq!(summary.get("done").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn stress_stream_is_deterministic_and_well_formed() {
        let spec = StressSpec { jobs: 7, ..StressSpec::new(7, 16, 3) };
        let a = stress_stream(&spec, Some(3), Some(60_000));
        assert_eq!(a, stress_stream(&spec, Some(3), Some(60_000)));
        let lines: Vec<&str> = a.lines().collect();
        // 7 submits + 2 cancels (jobs 3 and 6) + drain.
        assert_eq!(lines.len(), 10);
        for line in &lines {
            json::parse(line).expect("stream line is valid JSON");
        }
        assert!(lines[3].contains("\"cancel\"") && lines[3].contains("\"job\":3"));
        assert!(lines.last().unwrap().contains("drain"));
    }
}
