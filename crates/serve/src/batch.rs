//! Batch compilation as a thin convenience over the service.
//!
//! [`compile_batch`] used to be a hand-rolled `thread::scope` fan-out in
//! `ecmas-core`; it is now a facade over the same dispatch machine that
//! powers [`CompileService`](crate::CompileService) — the bounded queue,
//! the worker loop, the job slots — instantiated with *borrowed* payloads
//! on scoped threads instead of owned payloads on a persistent pool. The
//! observable contract is unchanged: results come back in input order and
//! are bit-identical to a sequential loop, because every compiler in the
//! workspace is deterministic and jobs share nothing.
//!
//! [`compile_jobs`] is the heterogeneous variant the experiment harness
//! uses: every job names its own compiler *and* chip, which is what the
//! `table1`–`table5` rows need (their chips are sized per circuit, so the
//! single-chip [`compile_batch`] shape cannot express them).

use ecmas_chip::Chip;
use ecmas_circuit::Circuit;
use ecmas_core::error::CompileError;
use ecmas_core::session::{CompileOutcome, Compiler};

use crate::job::JobError;
use crate::queue::Backpressure;
use crate::service::{worker_loop, JobCtl, RunJob, ServiceCore};

/// A borrowed unit of batch work: compiler + circuit + chip, all by
/// reference into the caller's scope.
struct BorrowedJob<'a, C: Compiler + Sync + ?Sized> {
    compiler: &'a C,
    circuit: &'a Circuit,
    chip: &'a Chip,
}

impl<C: Compiler + Sync + ?Sized> RunJob for BorrowedJob<'_, C> {
    fn run(&self, ctl: &JobCtl<'_>) -> Result<CompileOutcome, JobError> {
        ctl.checkpoint()?;
        Ok(self.compiler.compile_outcome(self.circuit, self.chip)?)
    }
}

/// One heterogeneous batch job for [`compile_jobs`]: its own compiler,
/// circuit, and chip.
#[derive(Clone, Copy)]
pub struct BatchJob<'a> {
    /// The compiler to run.
    pub compiler: &'a (dyn Compiler + Sync),
    /// The circuit to compile.
    pub circuit: &'a Circuit,
    /// The chip to compile it for.
    pub chip: &'a Chip,
}

/// Compiles every circuit with the same compiler and chip through the
/// service dispatch machine (one scoped worker per available core, capped
/// by the batch size). Results come back in input order and are
/// bit-identical to a sequential loop.
pub fn compile_batch<C: Compiler + Sync + ?Sized>(
    compiler: &C,
    circuits: &[Circuit],
    chip: &Chip,
) -> Vec<Result<CompileOutcome, CompileError>> {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    compile_batch_with_threads(compiler, circuits, chip, threads)
}

/// [`compile_batch`] with an explicit worker count (`1` runs inline).
pub fn compile_batch_with_threads<C: Compiler + Sync + ?Sized>(
    compiler: &C,
    circuits: &[Circuit],
    chip: &Chip,
    threads: usize,
) -> Vec<Result<CompileOutcome, CompileError>> {
    run_scoped(circuits.len(), threads, |i| BorrowedJob { compiler, circuit: &circuits[i], chip })
}

/// Compiles a heterogeneous job list — each with its own compiler and
/// chip — through the service dispatch machine. Results in input order.
pub fn compile_jobs(jobs: &[BatchJob<'_>]) -> Vec<Result<CompileOutcome, CompileError>> {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    compile_jobs_with_threads(jobs, threads)
}

/// [`compile_jobs`] with an explicit worker count (`1` runs inline).
pub fn compile_jobs_with_threads(
    jobs: &[BatchJob<'_>],
    threads: usize,
) -> Vec<Result<CompileOutcome, CompileError>> {
    run_scoped(jobs.len(), threads, |i| BorrowedJob {
        compiler: jobs[i].compiler,
        circuit: jobs[i].circuit,
        chip: jobs[i].chip,
    })
}

/// The scoped service: the persistent pool's queue + worker loop + job
/// slots, with borrowed payloads and `thread::scope` workers. The queue
/// is kept deliberately smaller than the batch (2 jobs per worker) so the
/// bounded-queue backpressure path is exercised on every large batch.
fn run_scoped<P, F>(
    count: usize,
    threads: usize,
    make: F,
) -> Vec<Result<CompileOutcome, CompileError>>
where
    P: RunJob,
    F: Fn(usize) -> P,
{
    let threads = threads.clamp(1, count.max(1));
    let unwrap_job_error = |e: JobError| match e {
        JobError::Compile(e) => e,
        // The worker loop catches compiler panics; surface them as a
        // panic here too, so batch callers see the same failure mode as
        // the single-threaded inline path (where the panic propagates
        // uncaught).
        JobError::Panicked { message } => panic!("batch compile panicked: {message}"),
        other => unreachable!("batch jobs neither cancel nor expire: {other}"),
    };
    if threads == 1 {
        let slot = crate::job::Slot::new(None, 0);
        let ctl = JobCtl::for_slot(&slot);
        return (0..count).map(|i| make(i).run(&ctl).map_err(unwrap_job_error)).collect();
    }
    let core = ServiceCore::new(2 * threads, Backpressure::Block);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker_loop(&core));
        }
        let handles: Vec<_> = (0..count)
            .map(|i| {
                core.submit(None, 0, make(i)).unwrap_or_else(|_| {
                    unreachable!("blocking backpressure on an open queue cannot refuse")
                })
            })
            .collect();
        core.close();
        handles.into_iter().map(|h| h.wait().map_err(unwrap_job_error)).collect()
    })
}
