//! The bounded job queue under the compile service.
//!
//! A `Mutex<VecDeque>` with two condition variables (`not_empty` for
//! workers, `not_full` for submitters) and an explicit close bit. The
//! capacity bound is what makes the service's memory footprint
//! independent of how fast clients submit: under [`Backpressure::Block`]
//! a saturated queue stalls the submitting thread (for `ecmasd` that
//! stalls the stdin reader, which stalls the pipe, which stalls the
//! producer — backpressure all the way out), and under
//! [`Backpressure::Reject`] the submitter gets the job back immediately
//! and decides for itself.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What a submission does when the job queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Backpressure {
    /// Block the submitting thread until a worker frees a slot.
    Block,
    /// Refuse the job immediately; the caller gets it back and can retry,
    /// shed load, or report saturation upstream.
    Reject,
}

/// Why a push did not enqueue; the rejected item is handed back.
#[derive(Debug)]
pub(crate) enum PushError<T> {
    /// At capacity under [`Backpressure::Reject`].
    Full(T),
    /// The queue was closed (the service is shutting down).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: blocking pop, close-to-drain semantics.
pub(crate) struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, applying `backpressure` when at capacity.
    pub(crate) fn push(&self, item: T, backpressure: Backpressure) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            match backpressure {
                Backpressure::Reject => return Err(PushError::Full(item)),
                Backpressure::Block => {
                    inner = self.not_full.wait(inner).expect("queue lock");
                }
            }
        }
    }

    /// Dequeues the next job, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* drained — the worker
    /// exit signal.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Puts a dequeued item back at the *front* of the queue, bypassing
    /// the capacity bound (the item already held a slot when it was first
    /// admitted; transient over-capacity here beats losing the job). Used
    /// by the supervisor to re-deliver a job whose worker died before
    /// running it. Fails only when the queue is closed — the caller must
    /// then settle the job itself.
    pub(crate) fn requeue(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        inner.items.push_front(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Whether [`close`](Self::close) has been called.
    pub(crate) fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Closes the queue: no further pushes; pops drain what is left.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = JobQueue::new(4);
        for i in 0..4 {
            q.push(i, Backpressure::Reject).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn reject_hands_the_item_back_when_full() {
        let q = JobQueue::new(1);
        q.push(1, Backpressure::Reject).unwrap();
        match q.push(2, Backpressure::Reject) {
            Err(PushError::Full(item)) => assert_eq!(item, 2),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(2);
        q.push(7, Backpressure::Block).unwrap();
        q.close();
        match q.push(8, Backpressure::Block) {
            Err(PushError::Closed(item)) => assert_eq!(item, 8),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn block_backpressure_waits_for_a_consumer() {
        let q = Arc::new(JobQueue::new(1));
        q.push(0u64, Backpressure::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Full: this blocks until the main thread pops.
                q.push(1, Backpressure::Block).unwrap();
            })
        };
        // Give the producer a chance to park, then unblock it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
    }
}
