//! The compile service: a persistent worker pool over the bounded queue.
//!
//! [`CompileService`] is the long-running front end of the workspace: it
//! owns `workers` OS threads that drain a bounded job queue, and hands
//! every submission back as a [`JobHandle`]. Requests carry their own
//! circuit, chip, config overrides, and optional deadline, so one service
//! instance serves heterogeneous traffic — exactly what the `ecmasd`
//! daemon and the experiment harness need.
//!
//! Built-in [`CompileRequest`]s run the staged session pipeline
//! (profile → map → schedule) with a cancellation/deadline checkpoint at
//! every stage boundary, so cooperative cancellation has real teeth
//! without the compiler having to poll flags in its inner loops. Custom
//! compilers (the baselines, or anything implementing
//! [`Compiler`]) run as a single opaque stage.
//!
//! Determinism: the service adds no randomness — every compiler in the
//! workspace is deterministic and jobs share no mutable state — so a
//! job's result is bit-identical whether the pool has 1 worker or 16,
//! and identical to calling the compiler directly.
//!
//! With [`ServiceConfig::cache_bytes`] set, built-in requests run behind
//! the `ecmas-cache` content-addressed cache: full-result hits skip the
//! pipeline, identical concurrent jobs coalesce into one compile, and
//! misses reuse cached profile/map stage artifacts where the config
//! allows. Determinism makes this transparent — a cached result is
//! bit-identical (schedule and report, minus wall-clock timings and the
//! `report.cache` provenance block) to a cold compile.
//!
//! # Fault tolerance
//!
//! The service is built to survive production failure modes, and to let
//! chaos harnesses *prove* it does:
//!
//! - **Fault injection** ([`ServiceConfig::faults`]): a seeded
//!   [`FaultPlan`] from `ecmas-faults` fires at queue admission, cache
//!   lookup, every stage boundary, and worker pickup. With faults off
//!   (the default) every hook is an `Option` check on a `None`.
//! - **Retry** ([`ServiceConfig::retry`]): transient failures (injected
//!   faults, and panics while a fault plan is active) re-run on the same
//!   worker with exponential, deterministically-jittered backoff, up to
//!   `max_attempts` and a service-wide retry budget. Retried results are
//!   bit-identical to first-try results; `report.attempts` and
//!   `report.last_fault` carry the provenance.
//! - **Supervision**: a worker thread that dies mid-pickup requeues its
//!   job and is respawned, so pool capacity never degrades. Counters are
//!   exposed via [`CompileService::supervisor_stats`].
//! - **Load shedding** ([`ServiceConfig::shed_cost_budget`]): when the
//!   aggregate estimated cost of accepted-but-unfinished jobs exceeds
//!   the budget, submissions are shed with
//!   [`SubmitError::Overloaded`] and a `retry_after_ms` hint.
//! - **Graceful drain** ([`CompileService::drain`]): stop admitting,
//!   finish everything in flight, keep serving results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ecmas_cache::{full_key, map_key, profile_key, Begin, CacheStats, CompileCache, FollowStatus};
use ecmas_chip::Chip;
use ecmas_circuit::Circuit;
use ecmas_core::compiler::EcmasConfig;
use ecmas_core::session::{CacheSource, CompileOutcome, Compiler};
use ecmas_core::Ecmas;
use ecmas_faults::{
    Fault, FaultConfig, FaultPlan, FaultSite, FaultSnapshot, RetryConfig, RetryPolicy,
};

use crate::job::{JobError, JobHandle, JobId, Slot};
use crate::queue::{Backpressure, JobQueue, PushError};

/// How long a coalesced follower parks before running its own
/// cancellation/deadline checkpoint and parking again.
const COALESCE_POLL: Duration = Duration::from_millis(25);

/// Sizing, backpressure, and fault-tolerance policy of a
/// [`CompileService`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bounded queue capacity; `0` means `4 × workers`. The bound is what
    /// keeps queue memory constant no matter how fast clients submit.
    pub queue_capacity: usize,
    /// What a submission does when the queue is at capacity.
    pub backpressure: Backpressure,
    /// Byte budget of the content-addressed compile cache fronting the
    /// built-in Ecmas pipeline; `0` (the default) disables caching
    /// entirely. Custom compilers always bypass the cache.
    pub cache_bytes: u64,
    /// Run the static analyzer on every job's result (circuit lints
    /// plus schedule verification), filling
    /// [`CompileReport::diagnostics`](ecmas_core::CompileReport). Off by
    /// default; individual requests can opt in with
    /// [`CompileRequest::with_analyze`]. Analysis runs after the cache,
    /// so cached outcomes stay diagnostic-free and hits pay the
    /// analyzer cost only when asked.
    pub analyze: bool,
    /// Seeded fault injection for chaos testing; `None` (the default)
    /// disables every injection site.
    pub faults: Option<FaultConfig>,
    /// Retry policy for transiently-failed jobs (injected faults, and
    /// panics while a fault plan is active). The default allows 3
    /// attempts; set `max_attempts: 1` to disable retries.
    pub retry: RetryConfig,
    /// Load-shedding budget: when the summed
    /// [`CompileRequest::estimated_cost`] of accepted-but-unfinished
    /// jobs would exceed this, new submissions are shed with
    /// [`SubmitError::Overloaded`]. `0` (the default) disables shedding.
    pub shed_cost_budget: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 0,
            backpressure: Backpressure::Block,
            cache_bytes: 0,
            analyze: false,
            faults: None,
            retry: RetryConfig::default(),
            shed_cost_budget: 0,
        }
    }
}

impl ServiceConfig {
    fn resolved(self) -> (usize, usize) {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        let capacity = if self.queue_capacity == 0 { 4 * workers } else { self.queue_capacity };
        (workers, capacity)
    }
}

/// Which session-pipeline scheduler a built-in request runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleMode {
    /// The paper's resource-adaptive choice (capacity vs `ĝPM`).
    Auto,
    /// Algorithm 1, the limited-resources scheduler.
    Limited,
    /// Algorithm 2, Ecmas-ReSu.
    ReSu,
}

impl ScheduleMode {
    /// Stable lowercase label (used in cache keys and the daemon
    /// protocol). Cache keys hash this string, so renaming a label
    /// silently invalidates every cached result for that mode.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ScheduleMode::Auto => "auto",
            ScheduleMode::Limited => "limited",
            ScheduleMode::ReSu => "resu",
        }
    }
}

enum Pipeline {
    Ecmas { config: EcmasConfig, mode: ScheduleMode },
    Custom(Arc<dyn Compiler + Send + Sync>),
}

impl Clone for Pipeline {
    fn clone(&self) -> Self {
        match self {
            Pipeline::Ecmas { config, mode } => Pipeline::Ecmas { config: *config, mode: *mode },
            Pipeline::Custom(c) => Pipeline::Custom(Arc::clone(c)),
        }
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pipeline::Ecmas { config, mode } => {
                f.debug_struct("Ecmas").field("config", config).field("mode", mode).finish()
            }
            Pipeline::Custom(c) => write!(f, "Custom({})", c.name()),
        }
    }
}

/// One unit of service work: a circuit, the chip to compile it for, the
/// pipeline to run, and an optional deadline.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use ecmas_serve::{CompileRequest, ScheduleMode};
/// use ecmas_chip::{Chip, CodeModel};
/// use ecmas_circuit::benchmarks::ghz;
///
/// let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3)?;
/// let request = CompileRequest::new(ghz(9), chip)
///     .with_mode(ScheduleMode::Limited)
///     .with_deadline(Duration::from_secs(5));
/// assert_eq!(request.circuit().qubits(), 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompileRequest {
    circuit: Circuit,
    chip: Chip,
    pipeline: Pipeline,
    deadline: Option<Duration>,
    analyze: bool,
}

impl CompileRequest {
    /// A request for the default Ecmas pipeline in [`ScheduleMode::Auto`],
    /// with no deadline.
    #[must_use]
    pub fn new(circuit: Circuit, chip: Chip) -> Self {
        CompileRequest {
            circuit,
            chip,
            pipeline: Pipeline::Ecmas { config: EcmasConfig::default(), mode: ScheduleMode::Auto },
            deadline: None,
            analyze: false,
        }
    }

    /// Overrides the Ecmas pipeline configuration (ablation knobs).
    /// Replaces any custom compiler set earlier.
    #[must_use]
    pub fn with_config(mut self, config: EcmasConfig) -> Self {
        let mode = match self.pipeline {
            Pipeline::Ecmas { mode, .. } => mode,
            Pipeline::Custom(_) => ScheduleMode::Auto,
        };
        self.pipeline = Pipeline::Ecmas { config, mode };
        self
    }

    /// Picks the scheduler the session pipeline runs. Replaces any custom
    /// compiler set earlier.
    #[must_use]
    pub fn with_mode(mut self, mode: ScheduleMode) -> Self {
        let config = match self.pipeline {
            Pipeline::Ecmas { config, .. } => config,
            Pipeline::Custom(_) => EcmasConfig::default(),
        };
        self.pipeline = Pipeline::Ecmas { config, mode };
        self
    }

    /// Runs an arbitrary [`Compiler`] (e.g. a baseline) instead of the
    /// staged Ecmas pipeline. Custom compilers execute as one opaque
    /// stage: cancellation and deadlines are only checked before it runs.
    #[must_use]
    pub fn with_compiler(mut self, compiler: Arc<dyn Compiler + Send + Sync>) -> Self {
        self.pipeline = Pipeline::Custom(compiler);
        self
    }

    /// Sets the deadline, measured from submission. A job that cannot
    /// finish inside it reports [`JobError::DeadlineExceeded`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Runs the static analyzer on this job's result: circuit lints
    /// against the target chip plus full schedule verification and
    /// metrics, delivered in the report's `diagnostics`. The analyzer
    /// only observes — the schedule is identical with or without it.
    #[must_use]
    pub fn with_analyze(mut self, analyze: bool) -> Self {
        self.analyze = analyze;
        self
    }

    /// Whether this request asked for an analyze pass.
    #[must_use]
    pub fn analyze(&self) -> bool {
        self.analyze
    }

    /// The circuit to compile.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The target chip.
    #[must_use]
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// A cheap, deterministic proxy for how much work this request
    /// represents (`qubits × ops`, at least 1). Admission control sums
    /// this over accepted-but-unfinished jobs and sheds when the sum
    /// would exceed [`ServiceConfig::shed_cost_budget`].
    #[must_use]
    pub fn estimated_cost(&self) -> u64 {
        (self.circuit.qubits() as u64).saturating_mul(self.circuit.ops().len() as u64).max(1)
    }
}

/// Why a submission was not accepted.
#[derive(Debug)]
#[non_exhaustive]
pub enum SubmitError {
    /// The queue is at capacity under [`Backpressure::Reject`]; the
    /// request is handed back so the caller can retry or shed load.
    Saturated(Box<CompileRequest>),
    /// Admission control shed this request: the aggregate estimated
    /// cost of accepted-but-unfinished jobs exceeds
    /// [`ServiceConfig::shed_cost_budget`]. `retry_after_ms` is a
    /// coarse hint (derived from the current backlog) for when a retry
    /// is likely to be admitted.
    Overloaded {
        /// The request, handed back untouched.
        request: Box<CompileRequest>,
        /// Suggested client-side backoff before resubmitting.
        retry_after_ms: u64,
    },
    /// The service is draining ([`CompileService::drain`]) and no longer
    /// admits new work; in-flight jobs still run to completion.
    Draining(Box<CompileRequest>),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated(_) => write!(f, "service queue is at capacity"),
            SubmitError::Overloaded { retry_after_ms, .. } => {
                write!(f, "service overloaded; retry after {retry_after_ms}ms")
            }
            SubmitError::Draining(_) => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Internal: anything a worker can execute. `run` borrows the payload so
/// a transiently-failed attempt can be retried; `ctl` exposes the
/// cancellation/deadline checkpoint and the fault-injection hooks.
pub(crate) trait RunJob: Send {
    fn run(&self, ctl: &JobCtl<'_>) -> Result<CompileOutcome, JobError>;
}

/// Checkpoint and fault-hook access handed to running jobs.
pub(crate) struct JobCtl<'a> {
    slot: &'a Slot,
    faults: Option<&'a FaultPlan>,
    job: JobId,
    attempt: u32,
}

impl<'a> JobCtl<'a> {
    /// A checkpoint view over a bare slot (the inline single-thread batch
    /// path has no worker loop to build one). No faults, attempt 1.
    pub(crate) fn for_slot(slot: &'a Slot) -> Self {
        JobCtl { slot, faults: None, job: 0, attempt: 1 }
    }

    pub(crate) fn checkpoint(&self) -> Result<(), JobError> {
        self.slot.checkpoint()
    }

    /// The staged pipeline's per-boundary hook: the plain checkpoint,
    /// plus the `Stage` fault-injection site. With no fault plan this is
    /// exactly `checkpoint` — the zero-cost-when-off guarantee the
    /// `service/stress_100_jobs_faults_off` bench row pins.
    pub(crate) fn stage_boundary(&self, stage: u8) -> Result<(), JobError> {
        self.checkpoint()?;
        if let Some(plan) = self.faults {
            let site = FaultSite::Stage { job: self.job, attempt: self.attempt, stage };
            if let Some(fault) = plan.decide(site) {
                plan.record(fault);
                match fault {
                    Fault::Latency(d) => std::thread::sleep(d),
                    Fault::SpuriousError => {
                        return Err(JobError::Faulted {
                            site: format!("stage {stage} (attempt {})", self.attempt),
                        });
                    }
                    Fault::Panic => panic!(
                        "injected fault: stage {stage} (job {} attempt {})",
                        self.job, self.attempt
                    ),
                    Fault::PoisonCache => {}
                }
            }
        }
        Ok(())
    }

    /// The `CacheLookup` fault site: drop the resident full-result entry
    /// for `key` so this attempt recompiles (and must still produce a
    /// bit-identical result).
    fn maybe_poison(&self, cache: &CompileCache, key: ecmas_cache::CompileKey) {
        if let Some(plan) = self.faults {
            let site = FaultSite::CacheLookup { job: self.job, attempt: self.attempt };
            if let Some(fault @ Fault::PoisonCache) = plan.decide(site) {
                plan.record(fault);
                cache.poison(key);
            }
        }
    }
}

/// Worker-pool supervision state: the live thread handles plus lifetime
/// counters. Respawns happen from a dying worker's drop guard; the
/// shutdown path joins `handles` repeatedly until no replacement appears.
pub(crate) struct Supervisor {
    handles: Mutex<Vec<JoinHandle<()>>>,
    spawned: AtomicU64,
    panics: AtomicU64,
    respawns: AtomicU64,
}

impl Supervisor {
    fn new() -> Self {
        Supervisor {
            handles: Mutex::new(Vec::new()),
            spawned: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
        }
    }
}

/// A point-in-time snapshot of worker supervision counters
/// ([`CompileService::supervisor_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Worker threads the pool is configured to keep alive.
    pub workers: usize,
    /// Threads spawned over the service's lifetime (initial + respawns).
    pub spawned: u64,
    /// Worker threads that died to a panic.
    pub panics: u64,
    /// Replacement workers spawned after a panic.
    pub respawns: u64,
    /// Jobs handed back to the queue by a dying worker.
    pub requeued: u64,
}

/// Service-wide retry counters ([`CompileService::retry_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retry-budget tokens consumed so far.
    pub spent: u64,
    /// The configured service-wide budget.
    pub budget: u64,
}

/// Shared state between submitters and workers: the queue plus id counter
/// plus the fault-tolerance policy objects. Generic over the payload so
/// the persistent service (owned jobs) and the scoped batch front end
/// (borrowed jobs) reuse one dispatch machine.
pub(crate) struct ServiceCore<P> {
    queue: JobQueue<(JobId, Arc<Slot>, P)>,
    backpressure: Backpressure,
    next_id: AtomicU64,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    /// Summed [`CompileRequest::estimated_cost`] of accepted jobs that
    /// have not yet settled; `0` cost per job when shedding is off.
    pending_cost: AtomicU64,
    /// Budget over `pending_cost`; `0` disables shedding.
    shed_cost_budget: u64,
    /// Submissions shed by admission control.
    shed: AtomicU64,
    /// Jobs a worker has picked up but not yet settled.
    inflight: AtomicUsize,
    /// Jobs handed back to the queue by a dying worker.
    requeued: AtomicU64,
    /// Set by [`begin_drain`](Self::begin_drain): reject new work.
    draining: AtomicBool,
}

pub(crate) enum CoreSubmitError<P> {
    Full(P),
    Closed(P),
    Draining(P),
    Overloaded { payload: P, retry_after_ms: u64 },
}

impl<P: RunJob> ServiceCore<P> {
    pub(crate) fn new(capacity: usize, backpressure: Backpressure) -> Self {
        Self::with_policy(capacity, backpressure, None, RetryConfig::default(), 0)
    }

    pub(crate) fn with_policy(
        capacity: usize,
        backpressure: Backpressure,
        faults: Option<FaultConfig>,
        retry: RetryConfig,
        shed_cost_budget: u64,
    ) -> Self {
        ServiceCore {
            queue: JobQueue::new(capacity),
            backpressure,
            next_id: AtomicU64::new(1),
            faults: faults.filter(FaultConfig::enabled).map(FaultPlan::new),
            retry: RetryPolicy::new(retry),
            pending_cost: AtomicU64::new(0),
            shed_cost_budget,
            shed: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            requeued: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }

    pub(crate) fn submit(
        &self,
        deadline: Option<Duration>,
        cost: u64,
        payload: P,
    ) -> Result<JobHandle, CoreSubmitError<P>> {
        if self.draining.load(Ordering::Acquire) {
            return Err(CoreSubmitError::Draining(payload));
        }
        if self.shed_cost_budget > 0 {
            // Optimistically claim the cost; back out when over budget.
            // The claim-then-check keeps concurrent submitters from all
            // sneaking under the bar together.
            let prev = self.pending_cost.fetch_add(cost, Ordering::AcqRel);
            if prev.saturating_add(cost) > self.shed_cost_budget {
                self.pending_cost.fetch_sub(cost, Ordering::AcqRel);
                self.shed.fetch_add(1, Ordering::Relaxed);
                // Coarse hint: scale with the backlog the request would
                // have waited behind.
                let retry_after_ms = ((self.queue.len() as u64 + 1) * 25).min(2_000);
                return Err(CoreSubmitError::Overloaded { payload, retry_after_ms });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = &self.faults {
            // Admission faults are latency-only: a spurious rejection
            // here would lose the job from the caller's perspective,
            // which the chaos acceptance run forbids.
            if let Some(fault @ Fault::Latency(d)) = plan.decide(FaultSite::Admission { job: id }) {
                plan.record(fault);
                std::thread::sleep(d);
            }
        }
        let slot = Arc::new(Slot::new(deadline, cost));
        match self.queue.push((id, Arc::clone(&slot), payload), self.backpressure) {
            Ok(()) => Ok(JobHandle::new(id, slot)),
            Err(e) => {
                if self.shed_cost_budget > 0 {
                    self.pending_cost.fetch_sub(cost, Ordering::AcqRel);
                }
                match e {
                    PushError::Full((_, _, p)) => Err(CoreSubmitError::Full(p)),
                    PushError::Closed((_, _, p)) => Err(CoreSubmitError::Closed(p)),
                }
            }
        }
    }

    /// Whether `error` should be retried rather than surfaced. Injected
    /// spurious errors always are; panics only while a fault plan is
    /// active (a panic from a deterministic compiler would just repeat).
    fn transient(&self, error: &JobError) -> bool {
        match error {
            JobError::Faulted { .. } => true,
            JobError::Panicked { .. } => self.faults.is_some(),
            _ => false,
        }
    }

    fn fault_seed(&self) -> u64 {
        self.faults.as_ref().map_or(0x9bad_cafe, |p| p.config().seed)
    }

    /// A job settled (result stored, or skipped): release its cost claim.
    fn settle(&self, slot: &Slot) {
        if self.shed_cost_budget > 0 {
            self.pending_cost.fetch_sub(slot.cost(), Ordering::AcqRel);
        }
    }

    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    pub(crate) fn close(&self) {
        self.queue.close();
    }

    pub(crate) fn queued(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    pub(crate) fn pending_cost(&self) -> u64 {
        self.pending_cost.load(Ordering::Acquire)
    }
}

/// One worker: drain the queue until it closes. Cancelled or expired jobs
/// are skipped at pickup; compiler panics are caught so one bad compile
/// cannot take a worker (or the queue behind it) down. Transient failures
/// retry in place, per the core's [`RetryPolicy`]. The one deliberate
/// exception: an injected `WorkerPickup` fault requeues the job and kills
/// the worker thread itself — that is the supervision path under test.
pub(crate) fn worker_loop<P: RunJob>(core: &ServiceCore<P>) {
    while let Some((id, slot, payload)) = core.queue.pop() {
        let delivery = slot.next_delivery();
        // Cap pickup kills per job: the decision is keyed on the delivery
        // counter so a requeued job normally escapes, but at
        // `--fault-percent 100` every delivery would fire and the job
        // would ping-pong between dying workers forever.
        const MAX_PICKUP_KILLS: u32 = 3;
        if let (Some(plan), true) = (&core.faults, delivery < MAX_PICKUP_KILLS) {
            let site = FaultSite::WorkerPickup { job: id, delivery };
            if let Some(fault @ Fault::Panic) = plan.decide(site) {
                plan.record(fault);
                // Hand the job back before dying so it is never lost; a
                // closed queue means shutdown, so settle it as faulted
                // instead of requeueing into the void.
                match core.queue.requeue((id, slot, payload)) {
                    Ok(()) => {
                        core.requeued.fetch_add(1, Ordering::AcqRel);
                    }
                    Err(PushError::Closed((_, slot, _)) | PushError::Full((_, slot, _))) => {
                        slot.finish(Err(JobError::Faulted {
                            site: format!("worker_pickup (delivery {delivery})"),
                        }));
                        core.settle(&slot);
                    }
                }
                panic!("injected fault: worker pickup (job {id} delivery {delivery})");
            }
        }
        core.inflight.fetch_add(1, Ordering::AcqRel);
        let result = run_attempts(core, id, &slot, &payload);
        slot.finish(result);
        core.settle(&slot);
        core.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The per-job attempt loop: run the payload, and while failures are
/// transient, the job is still wanted, and the retry policy grants a
/// token, back off deterministically and run it again. Retried successes
/// are stamped with their attempt count and last-fault provenance.
fn run_attempts<P: RunJob>(
    core: &ServiceCore<P>,
    id: JobId,
    slot: &Arc<Slot>,
    payload: &P,
) -> Result<CompileOutcome, JobError> {
    slot.begin()?;
    let mut attempt: u32 = 1;
    let mut last_fault: Option<String> = None;
    loop {
        let ctl = JobCtl { slot, faults: core.faults.as_ref(), job: id, attempt };
        let result = match catch_unwind(AssertUnwindSafe(|| payload.run(&ctl))) {
            Ok(result) => result,
            // `&*panic`, not `&panic`: a `&Box<dyn Any>` would itself
            // unsize into the `dyn Any` and hide the payload behind a
            // second indirection.
            Err(panic) => Err(JobError::Panicked { message: panic_message(&*panic) }),
        };
        match result {
            Ok(mut outcome) => {
                outcome.report.attempts = attempt;
                outcome.report.last_fault = last_fault;
                return Ok(outcome);
            }
            Err(error) => {
                let retry = core.transient(&error)
                    && slot.still_wanted().is_ok()
                    && core.retry.try_retry(attempt);
                if !retry {
                    return Err(error);
                }
                last_fault = Some(error.to_string());
                std::thread::sleep(core.retry.backoff(core.fault_seed(), id, attempt));
                attempt += 1;
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// An owned service job: the request plus the service's shared compile
/// cache (when one is configured), ready to run on a 'static worker.
struct OwnedJob {
    request: CompileRequest,
    cache: Option<Arc<CompileCache>>,
    analyze: bool,
}

impl RunJob for OwnedJob {
    fn run(&self, ctl: &JobCtl<'_>) -> Result<CompileOutcome, JobError> {
        let CompileRequest { circuit, chip, pipeline, .. } = &self.request;
        let mut outcome = match pipeline {
            Pipeline::Ecmas { config, mode } => {
                if let Some(cache) = &self.cache {
                    run_cached(cache, circuit, chip, *config, *mode, ctl)?
                } else {
                    run_stages(None, circuit, chip, *config, *mode, ctl)?.0
                }
            }
            Pipeline::Custom(compiler) => {
                // Custom compilers bypass the cache: their identity is an
                // opaque trait object the content hash cannot see.
                ctl.checkpoint()?;
                compiler.compile_outcome(circuit, chip)?
            }
        };
        if self.analyze {
            // After the cache on purpose: cached outcomes stay
            // diagnostic-free and every analyze-mode response (hit or
            // miss) carries a freshly computed set.
            let mut diags = ecmas_analyze::lint_circuit(circuit, Some(chip));
            diags.extend(ecmas_analyze::analyze_encoded(circuit, &outcome.encoded));
            outcome.report.diagnostics = diags;
        }
        Ok(outcome)
    }
}

/// The staged pipeline with a checkpoint (and fault-injection hook) at
/// every stage boundary: a cancel or deadline lapse stops the job at the
/// next boundary instead of after the whole compile. With a cache, each
/// stage first tries the corresponding cached artifact (profile: keyed by
/// circuit alone; map: keyed by circuit + chip + mapping-relevant config)
/// and publishes what it computes; the returned [`CacheSource`] says how
/// much was reused.
fn run_stages(
    cache: Option<&Arc<CompileCache>>,
    circuit: &Circuit,
    chip: &Chip,
    config: EcmasConfig,
    mode: ScheduleMode,
    ctl: &JobCtl<'_>,
) -> Result<(CompileOutcome, CacheSource), JobError> {
    let compiler = Ecmas::new(config);
    ctl.stage_boundary(0)?;
    let (profiled, profile_reused) = match cache.and_then(|c| {
        let key = profile_key(circuit);
        c.get_profile(key).map(|artifact| (key, artifact))
    }) {
        Some((_, artifact)) => (compiler.resume_session(circuit, chip, &artifact)?, true),
        None => {
            let profiled = compiler.session(circuit, chip)?;
            if let Some(cache) = cache {
                cache.put_profile(profile_key(circuit), Arc::new(profiled.artifact()));
            }
            (profiled, false)
        }
    };
    ctl.stage_boundary(1)?;
    let (mapped, map_reused) = match cache.and_then(|c| c.get_map(map_key(circuit, chip, &config)))
    {
        Some(artifact) => (profiled.resume_mapped(&artifact)?, true),
        None => {
            let mapped = profiled.map()?;
            if let Some(cache) = cache {
                cache.put_map(map_key(circuit, chip, &config), Arc::new(mapped.artifact()));
            }
            (mapped, false)
        }
    };
    ctl.stage_boundary(2)?;
    let scheduled = match mode {
        ScheduleMode::Auto => mapped.schedule_auto(),
        ScheduleMode::Limited => mapped.schedule(),
        ScheduleMode::ReSu => mapped.schedule_resu(),
    }?;
    let source = if map_reused {
        CacheSource::MapReuse
    } else if profile_reused {
        CacheSource::ProfileReuse
    } else {
        CacheSource::Miss
    };
    Ok((scheduled.into_outcome(), source))
}

/// The cached dispatch path: full-result lookup with in-flight
/// coalescing in front of [`run_stages`]. Every parked wait is bounded
/// by [`COALESCE_POLL`] so followers keep honoring their own deadlines
/// and cancellations while the leader compiles.
fn run_cached(
    cache: &Arc<CompileCache>,
    circuit: &Circuit,
    chip: &Chip,
    config: EcmasConfig,
    mode: ScheduleMode,
    ctl: &JobCtl<'_>,
) -> Result<CompileOutcome, JobError> {
    let key = full_key(circuit, chip, &config, mode.label());
    ctl.maybe_poison(cache, key);
    loop {
        ctl.checkpoint()?;
        match cache.begin(key) {
            Begin::Hit(shared) => {
                let mut outcome = (*shared).clone();
                outcome.report.cache = cache.info(CacheSource::Hit);
                return Ok(outcome);
            }
            Begin::Lead(lead) => {
                match run_stages(Some(cache), circuit, chip, config, mode, ctl) {
                    Ok((mut outcome, source)) => {
                        outcome.report.cache = cache.info(source);
                        let shared = lead.complete(outcome);
                        return Ok((*shared).clone());
                    }
                    Err(JobError::Compile(error)) => {
                        lead.fail(error.clone());
                        return Err(JobError::Compile(error));
                    }
                    // Cancelled / deadline / fault / panic-adjacent:
                    // dropping the guard abandons the flight and wakes
                    // the followers, whose next poll elects a new leader.
                    Err(other) => return Err(other),
                }
            }
            Begin::Follow(follow) => loop {
                match follow.poll(COALESCE_POLL) {
                    FollowStatus::Ready(Ok(shared)) => {
                        let mut outcome = (*shared).clone();
                        outcome.report.cache = cache.info(CacheSource::Coalesced);
                        return Ok(outcome);
                    }
                    FollowStatus::Ready(Err(error)) => return Err(JobError::Compile(error)),
                    FollowStatus::Abandoned => break,
                    FollowStatus::Pending => ctl.checkpoint()?,
                }
            },
        }
    }
}

/// A persistent compile service: worker pool + bounded job queue.
///
/// Dropping (or [`shutdown`](Self::shutdown)ting) the service closes the
/// queue, lets the workers drain every job already accepted, and joins
/// them — submitted work is never silently lost; cancel handles first for
/// a fast exit.
///
/// # Example
///
/// ```
/// use ecmas_serve::{CompileRequest, CompileService, ServiceConfig};
/// use ecmas_chip::{Chip, CodeModel};
/// use ecmas_circuit::benchmarks::ghz;
///
/// let service = CompileService::new(ServiceConfig { workers: 2, ..ServiceConfig::default() });
/// let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3)?;
/// let handle = service.submit(CompileRequest::new(ghz(9), chip))?;
/// let outcome = handle.wait()?;
/// assert_eq!(outcome.encoded.cycles(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CompileService {
    core: Arc<ServiceCore<OwnedJob>>,
    cache: Option<Arc<CompileCache>>,
    analyze: bool,
    shed_enabled: bool,
    worker_count: usize,
    supervisor: Arc<Supervisor>,
}

/// Spawn one worker thread and register its handle with the supervisor.
/// The thread carries a [`RespawnGuard`]: if it dies to a panic while the
/// queue is still open, the guard spawns a replacement, so pool capacity
/// never degrades.
fn spawn_worker(core: &Arc<ServiceCore<OwnedJob>>, supervisor: &Arc<Supervisor>) {
    let generation = supervisor.spawned.fetch_add(1, Ordering::AcqRel);
    let thread_core = Arc::clone(core);
    let thread_sup = Arc::clone(supervisor);
    let handle = std::thread::Builder::new()
        .name(format!("ecmas-serve-{generation}"))
        .spawn(move || {
            let _guard = RespawnGuard { core: thread_core.clone(), supervisor: thread_sup };
            worker_loop(&thread_core);
        })
        .expect("spawn service worker");
    supervisor.handles.lock().expect("supervisor lock").push(handle);
}

struct RespawnGuard {
    core: Arc<ServiceCore<OwnedJob>>,
    supervisor: Arc<Supervisor>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        self.supervisor.panics.fetch_add(1, Ordering::AcqRel);
        // No respawn once the queue is closed: shutdown's join loop
        // would chase replacements forever. A replacement spawned just
        // before close() is harmless — it drains and exits cleanly.
        if !self.core.queue.is_closed() {
            self.supervisor.respawns.fetch_add(1, Ordering::AcqRel);
            spawn_worker(&self.core, &self.supervisor);
        }
    }
}

impl CompileService {
    /// Starts the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread cannot be spawned.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let (workers, capacity) = config.resolved();
        let core = Arc::new(ServiceCore::with_policy(
            capacity,
            config.backpressure,
            config.faults,
            config.retry,
            config.shed_cost_budget,
        ));
        let cache = (config.cache_bytes > 0).then(|| {
            CompileCache::new(ecmas_cache::CacheConfig {
                byte_budget: config.cache_bytes,
                stage_artifacts: true,
            })
        });
        let supervisor = Arc::new(Supervisor::new());
        for _ in 0..workers {
            spawn_worker(&core, &supervisor);
        }
        CompileService {
            core,
            cache,
            analyze: config.analyze,
            shed_enabled: config.shed_cost_budget > 0,
            worker_count: workers,
            supervisor,
        }
    }

    /// Submits a request; returns immediately with the job's handle
    /// (under [`Backpressure::Block`] "immediately" means once the
    /// bounded queue has room).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the queue is full under
    /// [`Backpressure::Reject`]; [`SubmitError::Overloaded`] when
    /// admission control sheds the request; [`SubmitError::Draining`]
    /// after [`drain`](Self::drain) begins.
    pub fn submit(&self, request: CompileRequest) -> Result<JobHandle, SubmitError> {
        let analyze = self.analyze || request.analyze;
        let deadline = request.deadline;
        let cost = if self.shed_enabled { request.estimated_cost() } else { 0 };
        let job = OwnedJob { request, cache: self.cache.clone(), analyze };
        match self.core.submit(deadline, cost, job) {
            Ok(handle) => Ok(handle),
            Err(CoreSubmitError::Full(OwnedJob { request, .. })) => {
                Err(SubmitError::Saturated(Box::new(request)))
            }
            Err(CoreSubmitError::Overloaded {
                payload: OwnedJob { request, .. },
                retry_after_ms,
            }) => Err(SubmitError::Overloaded { request: Box::new(request), retry_after_ms }),
            Err(CoreSubmitError::Draining(OwnedJob { request, .. })) => {
                Err(SubmitError::Draining(Box::new(request)))
            }
            Err(CoreSubmitError::Closed(_)) => unreachable!("queue closes only on shutdown/drop"),
        }
    }

    /// A point-in-time snapshot of the compile-cache counters, or `None`
    /// when the service was configured with `cache_bytes: 0`.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Worker supervision counters: threads spawned, panics seen,
    /// replacements spawned, jobs requeued by dying workers.
    #[must_use]
    pub fn supervisor_stats(&self) -> SupervisorStats {
        SupervisorStats {
            workers: self.worker_count,
            spawned: self.supervisor.spawned.load(Ordering::Acquire),
            panics: self.supervisor.panics.load(Ordering::Acquire),
            respawns: self.supervisor.respawns.load(Ordering::Acquire),
            requeued: self.core.requeued.load(Ordering::Acquire),
        }
    }

    /// Injected-fault counters, or `None` when no fault plan is active.
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultSnapshot> {
        self.core.faults.as_ref().map(FaultPlan::snapshot)
    }

    /// Service-wide retry-budget counters.
    #[must_use]
    pub fn retry_stats(&self) -> RetryStats {
        RetryStats { spent: self.core.retry.spent(), budget: self.core.retry.config().budget }
    }

    /// Submissions shed by admission control so far.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.core.shed.load(Ordering::Relaxed)
    }

    /// Summed estimated cost of accepted-but-unfinished jobs (always `0`
    /// when shedding is disabled).
    #[must_use]
    pub fn pending_cost(&self) -> u64 {
        self.core.pending_cost()
    }

    /// Jobs accepted but not yet picked up by a worker.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.core.queued()
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Whether [`drain`](Self::drain) (or a prior `begin_drain`) has
    /// stopped admission.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.core.is_draining()
    }

    /// Graceful drain: stop admitting new work (submissions return
    /// [`SubmitError::Draining`]) and block until every accepted job has
    /// settled. The workers stay alive and results stay claimable — only
    /// admission is gone. Idempotent.
    pub fn drain(&self) {
        self.core.begin_drain();
        while self.core.queued() > 0 || self.core.inflight() > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Graceful shutdown: stop accepting, drain accepted jobs, join the
    /// workers. (Dropping the service does the same.)
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.core.close();
        // Join until no handle remains: a panicking worker pushes its
        // replacement's handle before its own join returns, so repeated
        // drains observe every generation.
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut handles = self.supervisor.handles.lock().expect("supervisor lock");
                handles.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for worker in drained {
                let _ = worker.join();
            }
        }
    }
}
