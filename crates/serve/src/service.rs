//! The compile service: a persistent worker pool over the bounded queue.
//!
//! [`CompileService`] is the long-running front end of the workspace: it
//! owns `workers` OS threads that drain a bounded job queue, and hands
//! every submission back as a [`JobHandle`]. Requests carry their own
//! circuit, chip, config overrides, and optional deadline, so one service
//! instance serves heterogeneous traffic — exactly what the `ecmasd`
//! daemon and the experiment harness need.
//!
//! Built-in [`CompileRequest`]s run the staged session pipeline
//! (profile → map → schedule) with a cancellation/deadline checkpoint at
//! every stage boundary, so cooperative cancellation has real teeth
//! without the compiler having to poll flags in its inner loops. Custom
//! compilers (the baselines, or anything implementing
//! [`Compiler`]) run as a single opaque stage.
//!
//! Determinism: the service adds no randomness — every compiler in the
//! workspace is deterministic and jobs share no mutable state — so a
//! job's result is bit-identical whether the pool has 1 worker or 16,
//! and identical to calling the compiler directly.
//!
//! With [`ServiceConfig::cache_bytes`] set, built-in requests run behind
//! the `ecmas-cache` content-addressed cache: full-result hits skip the
//! pipeline, identical concurrent jobs coalesce into one compile, and
//! misses reuse cached profile/map stage artifacts where the config
//! allows. Determinism makes this transparent — a cached result is
//! bit-identical (schedule and report, minus wall-clock timings and the
//! `report.cache` provenance block) to a cold compile.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ecmas_cache::{full_key, map_key, profile_key, Begin, CacheStats, CompileCache, FollowStatus};
use ecmas_chip::Chip;
use ecmas_circuit::Circuit;
use ecmas_core::compiler::EcmasConfig;
use ecmas_core::session::{CacheSource, CompileOutcome, Compiler};
use ecmas_core::Ecmas;

use crate::job::{JobError, JobHandle, Slot};
use crate::queue::{Backpressure, JobQueue, PushError};

/// How long a coalesced follower parks before running its own
/// cancellation/deadline checkpoint and parking again.
const COALESCE_POLL: Duration = Duration::from_millis(25);

/// Sizing and backpressure policy of a [`CompileService`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bounded queue capacity; `0` means `4 × workers`. The bound is what
    /// keeps queue memory constant no matter how fast clients submit.
    pub queue_capacity: usize,
    /// What a submission does when the queue is at capacity.
    pub backpressure: Backpressure,
    /// Byte budget of the content-addressed compile cache fronting the
    /// built-in Ecmas pipeline; `0` (the default) disables caching
    /// entirely. Custom compilers always bypass the cache.
    pub cache_bytes: u64,
    /// Run the static analyzer on every job's result (circuit lints
    /// plus schedule verification), filling
    /// [`CompileReport::diagnostics`](ecmas_core::CompileReport). Off by
    /// default; individual requests can opt in with
    /// [`CompileRequest::with_analyze`]. Analysis runs after the cache,
    /// so cached outcomes stay diagnostic-free and hits pay the
    /// analyzer cost only when asked.
    pub analyze: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 0,
            backpressure: Backpressure::Block,
            cache_bytes: 0,
            analyze: false,
        }
    }
}

impl ServiceConfig {
    fn resolved(self) -> (usize, usize) {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        let capacity = if self.queue_capacity == 0 { 4 * workers } else { self.queue_capacity };
        (workers, capacity)
    }
}

/// Which session-pipeline scheduler a built-in request runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleMode {
    /// The paper's resource-adaptive choice (capacity vs `ĝPM`).
    Auto,
    /// Algorithm 1, the limited-resources scheduler.
    Limited,
    /// Algorithm 2, Ecmas-ReSu.
    ReSu,
}

impl ScheduleMode {
    /// Stable lowercase label (used in cache keys and the daemon
    /// protocol). Cache keys hash this string, so renaming a label
    /// silently invalidates every cached result for that mode.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ScheduleMode::Auto => "auto",
            ScheduleMode::Limited => "limited",
            ScheduleMode::ReSu => "resu",
        }
    }
}

enum Pipeline {
    Ecmas { config: EcmasConfig, mode: ScheduleMode },
    Custom(Arc<dyn Compiler + Send + Sync>),
}

impl Clone for Pipeline {
    fn clone(&self) -> Self {
        match self {
            Pipeline::Ecmas { config, mode } => Pipeline::Ecmas { config: *config, mode: *mode },
            Pipeline::Custom(c) => Pipeline::Custom(Arc::clone(c)),
        }
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pipeline::Ecmas { config, mode } => {
                f.debug_struct("Ecmas").field("config", config).field("mode", mode).finish()
            }
            Pipeline::Custom(c) => write!(f, "Custom({})", c.name()),
        }
    }
}

/// One unit of service work: a circuit, the chip to compile it for, the
/// pipeline to run, and an optional deadline.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use ecmas_serve::{CompileRequest, ScheduleMode};
/// use ecmas_chip::{Chip, CodeModel};
/// use ecmas_circuit::benchmarks::ghz;
///
/// let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3)?;
/// let request = CompileRequest::new(ghz(9), chip)
///     .with_mode(ScheduleMode::Limited)
///     .with_deadline(Duration::from_secs(5));
/// assert_eq!(request.circuit().qubits(), 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompileRequest {
    circuit: Circuit,
    chip: Chip,
    pipeline: Pipeline,
    deadline: Option<Duration>,
    analyze: bool,
}

impl CompileRequest {
    /// A request for the default Ecmas pipeline in [`ScheduleMode::Auto`],
    /// with no deadline.
    #[must_use]
    pub fn new(circuit: Circuit, chip: Chip) -> Self {
        CompileRequest {
            circuit,
            chip,
            pipeline: Pipeline::Ecmas { config: EcmasConfig::default(), mode: ScheduleMode::Auto },
            deadline: None,
            analyze: false,
        }
    }

    /// Overrides the Ecmas pipeline configuration (ablation knobs).
    /// Replaces any custom compiler set earlier.
    #[must_use]
    pub fn with_config(mut self, config: EcmasConfig) -> Self {
        let mode = match self.pipeline {
            Pipeline::Ecmas { mode, .. } => mode,
            Pipeline::Custom(_) => ScheduleMode::Auto,
        };
        self.pipeline = Pipeline::Ecmas { config, mode };
        self
    }

    /// Picks the scheduler the session pipeline runs. Replaces any custom
    /// compiler set earlier.
    #[must_use]
    pub fn with_mode(mut self, mode: ScheduleMode) -> Self {
        let config = match self.pipeline {
            Pipeline::Ecmas { config, .. } => config,
            Pipeline::Custom(_) => EcmasConfig::default(),
        };
        self.pipeline = Pipeline::Ecmas { config, mode };
        self
    }

    /// Runs an arbitrary [`Compiler`] (e.g. a baseline) instead of the
    /// staged Ecmas pipeline. Custom compilers execute as one opaque
    /// stage: cancellation and deadlines are only checked before it runs.
    #[must_use]
    pub fn with_compiler(mut self, compiler: Arc<dyn Compiler + Send + Sync>) -> Self {
        self.pipeline = Pipeline::Custom(compiler);
        self
    }

    /// Sets the deadline, measured from submission. A job that cannot
    /// finish inside it reports [`JobError::DeadlineExceeded`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Runs the static analyzer on this job's result: circuit lints
    /// against the target chip plus full schedule verification and
    /// metrics, delivered in the report's `diagnostics`. The analyzer
    /// only observes — the schedule is identical with or without it.
    #[must_use]
    pub fn with_analyze(mut self, analyze: bool) -> Self {
        self.analyze = analyze;
        self
    }

    /// Whether this request asked for an analyze pass.
    #[must_use]
    pub fn analyze(&self) -> bool {
        self.analyze
    }

    /// The circuit to compile.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The target chip.
    #[must_use]
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }
}

/// Why a submission was not accepted.
#[derive(Debug)]
#[non_exhaustive]
pub enum SubmitError {
    /// The queue is at capacity under [`Backpressure::Reject`]; the
    /// request is handed back so the caller can retry or shed load.
    Saturated(Box<CompileRequest>),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated(_) => write!(f, "service queue is at capacity"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Internal: anything a worker can execute. `run` consumes the payload;
/// `ctl` exposes the cancellation/deadline checkpoint.
pub(crate) trait RunJob: Send {
    fn run(self, ctl: &JobCtl<'_>) -> Result<CompileOutcome, JobError>;
}

/// Checkpoint access handed to running jobs.
pub(crate) struct JobCtl<'a> {
    slot: &'a Slot,
}

impl<'a> JobCtl<'a> {
    /// A checkpoint view over a bare slot (the inline single-thread batch
    /// path has no worker loop to build one).
    pub(crate) fn for_slot(slot: &'a Slot) -> Self {
        JobCtl { slot }
    }

    pub(crate) fn checkpoint(&self) -> Result<(), JobError> {
        self.slot.checkpoint()
    }
}

/// Shared state between submitters and workers: the queue plus id counter.
/// Generic over the payload so the persistent service (owned jobs) and the
/// scoped batch front end (borrowed jobs) reuse one dispatch machine.
pub(crate) struct ServiceCore<P> {
    queue: JobQueue<(Arc<Slot>, P)>,
    backpressure: Backpressure,
    next_id: AtomicU64,
}

impl<P: RunJob> ServiceCore<P> {
    pub(crate) fn new(capacity: usize, backpressure: Backpressure) -> Self {
        ServiceCore { queue: JobQueue::new(capacity), backpressure, next_id: AtomicU64::new(1) }
    }

    pub(crate) fn submit(
        &self,
        deadline: Option<Duration>,
        payload: P,
    ) -> Result<JobHandle, PushError<P>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::new(deadline));
        match self.queue.push((Arc::clone(&slot), payload), self.backpressure) {
            Ok(()) => Ok(JobHandle::new(id, slot)),
            Err(PushError::Full((_, p))) => Err(PushError::Full(p)),
            Err(PushError::Closed((_, p))) => Err(PushError::Closed(p)),
        }
    }

    pub(crate) fn close(&self) {
        self.queue.close();
    }

    pub(crate) fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// One worker: drain the queue until it closes. Cancelled or expired jobs
/// are skipped at pickup; panics are caught so one bad compile cannot
/// take a worker (or the queue behind it) down.
pub(crate) fn worker_loop<P: RunJob>(core: &ServiceCore<P>) {
    while let Some((slot, payload)) = core.queue.pop() {
        let result = match slot.begin() {
            Err(e) => Err(e),
            Ok(()) => {
                let ctl = JobCtl { slot: &slot };
                match catch_unwind(AssertUnwindSafe(|| payload.run(&ctl))) {
                    Ok(result) => result,
                    // `&*panic`, not `&panic`: a `&Box<dyn Any>` would
                    // itself unsize into the `dyn Any` and hide the
                    // payload behind a second indirection.
                    Err(panic) => Err(JobError::Panicked { message: panic_message(&*panic) }),
                }
            }
        };
        slot.finish(result);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// An owned service job: the request plus the service's shared compile
/// cache (when one is configured), ready to run on a 'static worker.
struct OwnedJob {
    request: CompileRequest,
    cache: Option<Arc<CompileCache>>,
    analyze: bool,
}

impl RunJob for OwnedJob {
    fn run(self, ctl: &JobCtl<'_>) -> Result<CompileOutcome, JobError> {
        let OwnedJob { request, cache, analyze } = self;
        let CompileRequest { circuit, chip, pipeline, .. } = request;
        let mut outcome = match pipeline {
            Pipeline::Ecmas { config, mode } => {
                if let Some(cache) = cache {
                    run_cached(&cache, &circuit, &chip, config, mode, ctl)?
                } else {
                    run_stages(None, &circuit, &chip, config, mode, ctl)?.0
                }
            }
            Pipeline::Custom(compiler) => {
                // Custom compilers bypass the cache: their identity is an
                // opaque trait object the content hash cannot see.
                ctl.checkpoint()?;
                compiler.compile_outcome(&circuit, &chip)?
            }
        };
        if analyze {
            // After the cache on purpose: cached outcomes stay
            // diagnostic-free and every analyze-mode response (hit or
            // miss) carries a freshly computed set.
            let mut diags = ecmas_analyze::lint_circuit(&circuit, Some(&chip));
            diags.extend(ecmas_analyze::analyze_encoded(&circuit, &outcome.encoded));
            outcome.report.diagnostics = diags;
        }
        Ok(outcome)
    }
}

/// The staged pipeline with a checkpoint at every stage boundary: a
/// cancel or deadline lapse stops the job at the next boundary instead
/// of after the whole compile. With a cache, each stage first tries the
/// corresponding cached artifact (profile: keyed by circuit alone; map:
/// keyed by circuit + chip + mapping-relevant config) and publishes what
/// it computes; the returned [`CacheSource`] says how much was reused.
fn run_stages(
    cache: Option<&Arc<CompileCache>>,
    circuit: &Circuit,
    chip: &Chip,
    config: EcmasConfig,
    mode: ScheduleMode,
    ctl: &JobCtl<'_>,
) -> Result<(CompileOutcome, CacheSource), JobError> {
    let compiler = Ecmas::new(config);
    ctl.checkpoint()?;
    let (profiled, profile_reused) = match cache.and_then(|c| {
        let key = profile_key(circuit);
        c.get_profile(key).map(|artifact| (key, artifact))
    }) {
        Some((_, artifact)) => (compiler.resume_session(circuit, chip, &artifact)?, true),
        None => {
            let profiled = compiler.session(circuit, chip)?;
            if let Some(cache) = cache {
                cache.put_profile(profile_key(circuit), Arc::new(profiled.artifact()));
            }
            (profiled, false)
        }
    };
    ctl.checkpoint()?;
    let (mapped, map_reused) = match cache.and_then(|c| c.get_map(map_key(circuit, chip, &config)))
    {
        Some(artifact) => (profiled.resume_mapped(&artifact)?, true),
        None => {
            let mapped = profiled.map()?;
            if let Some(cache) = cache {
                cache.put_map(map_key(circuit, chip, &config), Arc::new(mapped.artifact()));
            }
            (mapped, false)
        }
    };
    ctl.checkpoint()?;
    let scheduled = match mode {
        ScheduleMode::Auto => mapped.schedule_auto(),
        ScheduleMode::Limited => mapped.schedule(),
        ScheduleMode::ReSu => mapped.schedule_resu(),
    }?;
    let source = if map_reused {
        CacheSource::MapReuse
    } else if profile_reused {
        CacheSource::ProfileReuse
    } else {
        CacheSource::Miss
    };
    Ok((scheduled.into_outcome(), source))
}

/// The cached dispatch path: full-result lookup with in-flight
/// coalescing in front of [`run_stages`]. Every parked wait is bounded
/// by [`COALESCE_POLL`] so followers keep honoring their own deadlines
/// and cancellations while the leader compiles.
fn run_cached(
    cache: &Arc<CompileCache>,
    circuit: &Circuit,
    chip: &Chip,
    config: EcmasConfig,
    mode: ScheduleMode,
    ctl: &JobCtl<'_>,
) -> Result<CompileOutcome, JobError> {
    let key = full_key(circuit, chip, &config, mode.label());
    loop {
        ctl.checkpoint()?;
        match cache.begin(key) {
            Begin::Hit(shared) => {
                let mut outcome = (*shared).clone();
                outcome.report.cache = cache.info(CacheSource::Hit);
                return Ok(outcome);
            }
            Begin::Lead(lead) => {
                match run_stages(Some(cache), circuit, chip, config, mode, ctl) {
                    Ok((mut outcome, source)) => {
                        outcome.report.cache = cache.info(source);
                        let shared = lead.complete(outcome);
                        return Ok((*shared).clone());
                    }
                    Err(JobError::Compile(error)) => {
                        lead.fail(error.clone());
                        return Err(JobError::Compile(error));
                    }
                    // Cancelled / deadline / panic-adjacent: dropping the
                    // guard abandons the flight and wakes the followers,
                    // whose next poll elects a new leader.
                    Err(other) => return Err(other),
                }
            }
            Begin::Follow(follow) => loop {
                match follow.poll(COALESCE_POLL) {
                    FollowStatus::Ready(Ok(shared)) => {
                        let mut outcome = (*shared).clone();
                        outcome.report.cache = cache.info(CacheSource::Coalesced);
                        return Ok(outcome);
                    }
                    FollowStatus::Ready(Err(error)) => return Err(JobError::Compile(error)),
                    FollowStatus::Abandoned => break,
                    FollowStatus::Pending => ctl.checkpoint()?,
                }
            },
        }
    }
}

/// A persistent compile service: worker pool + bounded job queue.
///
/// Dropping (or [`shutdown`](Self::shutdown)ting) the service closes the
/// queue, lets the workers drain every job already accepted, and joins
/// them — submitted work is never silently lost; cancel handles first for
/// a fast exit.
///
/// # Example
///
/// ```
/// use ecmas_serve::{CompileRequest, CompileService, ServiceConfig};
/// use ecmas_chip::{Chip, CodeModel};
/// use ecmas_circuit::benchmarks::ghz;
///
/// let service = CompileService::new(ServiceConfig { workers: 2, ..ServiceConfig::default() });
/// let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3)?;
/// let handle = service.submit(CompileRequest::new(ghz(9), chip))?;
/// let outcome = handle.wait()?;
/// assert_eq!(outcome.encoded.cycles(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CompileService {
    core: Arc<ServiceCore<OwnedJob>>,
    cache: Option<Arc<CompileCache>>,
    analyze: bool,
    workers: Vec<JoinHandle<()>>,
}

impl CompileService {
    /// Starts the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread cannot be spawned.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let (workers, capacity) = config.resolved();
        let core = Arc::new(ServiceCore::new(capacity, config.backpressure));
        let cache = (config.cache_bytes > 0).then(|| {
            CompileCache::new(ecmas_cache::CacheConfig {
                byte_budget: config.cache_bytes,
                stage_artifacts: true,
            })
        });
        let handles = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("ecmas-serve-{i}"))
                    .spawn(move || worker_loop(&core))
                    .expect("spawn service worker")
            })
            .collect();
        CompileService { core, cache, analyze: config.analyze, workers: handles }
    }

    /// Submits a request; returns immediately with the job's handle
    /// (under [`Backpressure::Block`] "immediately" means once the
    /// bounded queue has room).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the queue is full under
    /// [`Backpressure::Reject`].
    pub fn submit(&self, request: CompileRequest) -> Result<JobHandle, SubmitError> {
        let analyze = self.analyze || request.analyze;
        let job = OwnedJob { request, cache: self.cache.clone(), analyze };
        match self.core.submit(job.request.deadline, job) {
            Ok(handle) => Ok(handle),
            Err(PushError::Full(OwnedJob { request, .. })) => {
                Err(SubmitError::Saturated(Box::new(request)))
            }
            Err(PushError::Closed(_)) => unreachable!("queue closes only on shutdown/drop"),
        }
    }

    /// A point-in-time snapshot of the compile-cache counters, or `None`
    /// when the service was configured with `cache_bytes: 0`.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Jobs accepted but not yet picked up by a worker.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.core.queued()
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Graceful shutdown: stop accepting, drain accepted jobs, join the
    /// workers. (Dropping the service does the same.)
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.core.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
