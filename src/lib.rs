//! Root umbrella for examples/integration tests.
