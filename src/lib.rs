//! **Ecmas** — the umbrella facade of the workspace.
//!
//! This crate re-exports the whole public surface of
//! [`ecmas_core`] and the [`ecmas_serve`] service layer under the short
//! name every consumer uses (`ecmas::…`), and owns the workspace-level
//! artifacts: the `ecmasc` CLI and `ecmasd` daemon (`src/bin/`), the
//! runnable `examples/`, and the cross-crate integration tests in
//! `tests/`.
//!
//! Start from [`Ecmas`] (the pipeline driver), [`Ecmas::session`] (the
//! staged API: profile → map → schedule, with per-stage artifacts,
//! overrides, and a structured [`CompileReport`] per run), and
//! [`EcmasConfig`] (every ablation knob of the paper's Tables II–V), or
//! from the repo-level `README.md` for the map of the eight
//! implementation crates. The [`Compiler`] trait is the interface every
//! compiler in the workspace (Ecmas and both baselines) implements.
//!
//! Workload-facing traffic goes through the service layer
//! ([`serve`](mod@serve)): [`CompileService`] owns a persistent worker
//! pool over a bounded job queue and hands back [`JobHandle`]s with
//! poll/wait/cancel and deadline support; [`compile_batch`] is the batch
//! convenience over the same machinery; the `ecmasd` binary speaks the
//! service's newline-delimited JSON protocol. The pipeline itself —
//! profiling, mapping, cut-type initialization, scheduling, validation —
//! is documented in depth on [`ecmas_core`].
//!
//! # Example
//!
//! ```
//! use ecmas::{validate_encoded, Ecmas};
//! use ecmas_chip::{Chip, CodeModel};
//! use ecmas_circuit::Circuit;
//!
//! let mut circuit = Circuit::new(4);
//! circuit.cnot(0, 1);
//! circuit.cnot(2, 3);
//! circuit.cnot(1, 2);
//!
//! let chip = Chip::min_viable(CodeModel::LatticeSurgery, circuit.qubits(), 3)?;
//! let encoded = Ecmas::default().compile(&circuit, &chip)?;
//! validate_encoded(&circuit, &encoded)?;
//! assert!(encoded.cycles() as usize >= circuit.depth());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ecmas_core::{
    compiler, cut, encoded, engine, error, hardness, mapping, profile, resources, resu, session,
    stable, viz,
};

pub use ecmas_core::{
    analyze_encoded, collect_violations, diagnostics_to_json, fingerprint_encoded, para_finding,
    schedule_limited, schedule_sufficient, validate_encoded, Algorithm, CacheInfo, CacheSource,
    ChipFleet, Code, CompileError, CompileOutcome, CompileReport, Compiler, CutInitStrategy,
    CutPolicy, CutType, Diagnostic, Ecmas, EcmasConfig, EncodedCircuit, Event, EventKind,
    ExecutionScheme, FleetSelection, GateOrder, LocationStrategy, MapArtifact, ProfileArtifact,
    ResourceEstimate, ScheduleConfig, Severity, Span, StableHasher, StageCost, ValidateError,
};

/// The static-analysis layer (`ecmas-analyze`), re-exported whole:
/// source/circuit/schedule-level lints over the shared diagnostic
/// registry (see `ecmas_analyze` for the code table).
pub use ecmas_analyze as analyze;

pub use ecmas_analyze::{has_errors, lint_circuit, lint_gates, lint_qasm};

/// The compile-cache layer (`ecmas-cache`), re-exported whole:
/// content-addressed keys, the byte-budgeted LRU, and in-flight
/// coalescing (see `ecmas_cache` for the design).
pub use ecmas_cache as cache;

pub use ecmas_cache::{CacheConfig, CacheStats, CompileCache, CompileKey};

/// The service layer (`ecmas-serve`), re-exported whole: job queue,
/// handles, deadlines, batch facades, and the `ecmasd` protocol engine.
pub use ecmas_serve as serve;

pub use ecmas_serve::{
    compile_batch, compile_batch_with_threads, compile_jobs, compile_jobs_with_threads,
    Backpressure, BatchJob, CompileRequest, CompileService, FaultConfig, FaultSnapshot, JobError,
    JobHandle, JobId, JobStatus, RetryConfig, RetryStats, ScheduleMode, ServiceConfig, SubmitError,
    SupervisorStats,
};
