//! `ecmasd` — the Ecmas compile daemon: newline-delimited JSON over
//! stdin/stdout, backed by the `ecmas-serve` worker pool.
//!
//! ```sh
//! ecmasd [--model dd|ls] [--chip min|4x|congested|sufficient]
//!        [--workers N] [--queue N] [--reject] [--cache-mb M]
//!        [--fault-percent P] [--fault-seed S] [--retry-attempts N]
//!        [--retry-budget N] [--shed-budget C]
//! ```
//!
//! The chaos knobs: `--fault-percent`/`--fault-seed` arm the seeded
//! fault-injection plan (spurious stage errors, injected panics,
//! latency, poisoned cache entries — see `ecmas-faults`);
//! `--retry-attempts`/`--retry-budget` bound the transparent retries
//! that heal them; `--shed-budget` turns on admission control (submits
//! beyond the aggregate cost budget get an `overloaded` error with a
//! `retry_after_ms` hint). Stdin lines beyond 1 MiB are refused with a
//! structured error without ever being buffered.
//!
//! One request object per input line (`submit` / `status` / `cancel` /
//! `result` / `drain` / `stats` — see `ecmas_serve::daemon` for the
//! schema), one response object per output line. The content-addressed
//! compile cache defaults on at 64 MiB; `--cache-mb` resizes it and
//! `--cache-mb 0` disables it (`stats` reports the hit/miss/eviction
//! counters either way). At EOF the daemon drains: every
//! unreported job gets its `result` line (the same `CompileReport` JSON
//! `ecmasc --json` emits) followed by a `drained` summary. The job queue
//! is bounded: when it is full, reading stdin stalls — backpressure
//! propagates out through the pipe — unless `--reject` sheds load
//! instead.
//!
//! A second mode generates work rather than serving it:
//!
//! ```sh
//! ecmasd --emit-stress 1000 --seed 7 [--qubits-max 49] [--depth-max 1500]
//!        [--dup-percent 60] [--defect-percent 10] [--cancel-every 50]
//!        [--deadline-ms 60000]
//! ```
//!
//! prints a deterministic seeded `StressWorkload` as a ready-to-pipe job
//! stream (`--dup-percent` makes that percentage of jobs exact repeats
//! of earlier ones, Zipf-skewed toward a few hot circuits — the shape
//! that exercises the compile cache; `--defect-percent` stamps each
//! submit with a seeded fraction of dead tiles so the receiving daemon
//! compiles onto damaged hardware, without perturbing the job stream
//! itself), so a full service exercise is one shell line:
//!
//! ```sh
//! ecmasd --emit-stress 1000 --seed 7 --dup-percent 60 \
//!     | ecmasd --chip congested --model ls
//! ```

use std::io::{BufRead, Write};
use std::process::ExitCode;

use ecmas::serve::daemon::{
    oversized_line_error, stress_stream, ChipKind, Daemon, DaemonOptions, MAX_LINE_BYTES,
};
use ecmas::serve::Backpressure;
use ecmas_chip::CodeModel;
use ecmas_circuit::random::StressSpec;

struct Args {
    options: DaemonOptions,
    emit_stress: Option<usize>,
    seed: u64,
    qubits_max: usize,
    depth_max: usize,
    dup_percent: u8,
    defect_percent: u8,
    cancel_every: Option<usize>,
    deadline_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut options = DaemonOptions::default();
    let mut emit_stress = None;
    let mut seed = 0u64;
    let mut qubits_max = 49usize;
    let mut depth_max = 1500usize;
    let mut dup_percent = 0u8;
    let mut defect_percent = 0u8;
    let mut cancel_every = None;
    let mut deadline_ms = None;
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("missing value for {flag}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => {
                options.model = match value(&mut args, "--model")?.as_str() {
                    "dd" | "double-defect" => CodeModel::DoubleDefect,
                    "ls" | "lattice-surgery" => CodeModel::LatticeSurgery,
                    other => return Err(format!("unknown model {other:?} (want dd|ls)")),
                };
            }
            "--chip" => {
                let v = value(&mut args, "--chip")?;
                options.chip = ChipKind::parse(&v).ok_or_else(|| {
                    format!("unknown chip {v:?} (want min|4x|congested|sufficient)")
                })?;
            }
            "--workers" => {
                options.service.workers = parse_num(&value(&mut args, "--workers")?, "--workers")?;
            }
            "--queue" => {
                options.service.queue_capacity =
                    parse_num(&value(&mut args, "--queue")?, "--queue")?;
            }
            "--reject" => options.service.backpressure = Backpressure::Reject,
            "--cache-mb" => {
                let mb: u64 = parse_num(&value(&mut args, "--cache-mb")?, "--cache-mb")?;
                options.service.cache_bytes = mb * 1024 * 1024;
            }
            "--fault-percent" => {
                let percent: u8 =
                    parse_num(&value(&mut args, "--fault-percent")?, "--fault-percent")?;
                if percent > 100 {
                    return Err("--fault-percent must be 0..=100".into());
                }
                let mut config = options.service.faults.unwrap_or_default();
                config.percent = percent;
                options.service.faults = Some(config);
            }
            "--fault-seed" => {
                let fault_seed: u64 =
                    parse_num(&value(&mut args, "--fault-seed")?, "--fault-seed")?;
                let mut config = options.service.faults.unwrap_or_default();
                config.seed = fault_seed;
                options.service.faults = Some(config);
            }
            "--retry-attempts" => {
                options.service.retry.max_attempts =
                    parse_num(&value(&mut args, "--retry-attempts")?, "--retry-attempts")?;
                if options.service.retry.max_attempts == 0 {
                    return Err("--retry-attempts must be at least 1".into());
                }
            }
            "--retry-budget" => {
                options.service.retry.budget =
                    parse_num(&value(&mut args, "--retry-budget")?, "--retry-budget")?;
            }
            "--shed-budget" => {
                options.service.shed_cost_budget =
                    parse_num(&value(&mut args, "--shed-budget")?, "--shed-budget")?;
            }
            "--emit-stress" => {
                emit_stress =
                    Some(parse_num(&value(&mut args, "--emit-stress")?, "--emit-stress")?);
            }
            "--seed" => seed = parse_num(&value(&mut args, "--seed")?, "--seed")?,
            "--qubits-max" => {
                qubits_max = parse_num(&value(&mut args, "--qubits-max")?, "--qubits-max")?;
            }
            "--depth-max" => {
                depth_max = parse_num(&value(&mut args, "--depth-max")?, "--depth-max")?;
            }
            "--dup-percent" => {
                dup_percent = parse_num(&value(&mut args, "--dup-percent")?, "--dup-percent")?;
                if dup_percent > 100 {
                    return Err("--dup-percent must be 0..=100".into());
                }
            }
            "--defect-percent" => {
                defect_percent =
                    parse_num(&value(&mut args, "--defect-percent")?, "--defect-percent")?;
                if defect_percent > 100 {
                    return Err("--defect-percent must be 0..=100".into());
                }
            }
            "--cancel-every" => {
                cancel_every =
                    Some(parse_num(&value(&mut args, "--cancel-every")?, "--cancel-every")?);
            }
            "--deadline-ms" => {
                deadline_ms =
                    Some(parse_num(&value(&mut args, "--deadline-ms")?, "--deadline-ms")?);
            }
            "--help" | "-h" => {
                return Err("usage: ecmasd [--model dd|ls] \
                            [--chip min|4x|congested|sufficient] [--workers N] [--queue N] \
                            [--reject] [--cache-mb M] [--fault-percent P] [--fault-seed S] \
                            [--retry-attempts N] [--retry-budget N] [--shed-budget C] \
                            | ecmasd --emit-stress N [--seed S] \
                            [--qubits-max Q] [--depth-max D] [--dup-percent P] \
                            [--defect-percent P] [--cancel-every K] [--deadline-ms MS]"
                    .into());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Args {
        options,
        emit_stress,
        seed,
        qubits_max,
        depth_max,
        dup_percent,
        defect_percent,
        cancel_every,
        deadline_ms,
    })
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("invalid value {value:?} for {flag}"))
}

enum InputLine {
    /// A complete line within the cap (terminator stripped).
    Text(String),
    /// A line that blew past [`MAX_LINE_BYTES`]; its bytes were consumed
    /// and discarded without ever being buffered whole.
    Oversized,
}

/// Reads one `\n`-terminated line without ever holding more than
/// [`MAX_LINE_BYTES`] of it in memory. `BufRead::lines` would buffer an
/// arbitrarily long line before the daemon could refuse it — a single
/// terabyte "line" from a misbehaving client must cost a bounded buffer,
/// not the daemon's address space.
fn read_line_capped(reader: &mut impl BufRead) -> Result<Option<InputLine>, String> {
    let mut buf = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf().map_err(|e| format!("stdin: {e}"))?;
        if chunk.is_empty() {
            if buf.is_empty() && !oversized {
                return Ok(None);
            }
            break;
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !oversized {
            if buf.len() + take > MAX_LINE_BYTES {
                oversized = true;
                buf = Vec::new();
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        let done = newline.is_some();
        reader.consume(take + usize::from(done));
        if done {
            break;
        }
    }
    if oversized {
        Ok(Some(InputLine::Oversized))
    } else {
        Ok(Some(InputLine::Text(String::from_utf8_lossy(&buf).into_owned())))
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    if let Some(jobs) = args.emit_stress {
        if args.qubits_max < 4 {
            return Err("--qubits-max must be at least 4 (a stress layer needs two pairs)".into());
        }
        if args.depth_max == 0 {
            return Err("--depth-max must be positive".into());
        }
        let base = StressSpec::new(jobs, args.qubits_max, args.seed);
        let spec = StressSpec {
            max_depth: args.depth_max,
            min_depth: base.min_depth.min(args.depth_max),
            dup_percent: args.dup_percent,
            defect_percent: args.defect_percent,
            ..base
        };
        print!("{}", stress_stream(&spec, args.cancel_every, args.deadline_ms));
        return Ok(());
    }

    let mut daemon = Daemon::new(args.options);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut out = stdout.lock();
    while let Some(line) = read_line_capped(&mut input)? {
        match line {
            InputLine::Text(line) => {
                for response in daemon.handle_line(&line) {
                    writeln!(out, "{response}").map_err(|e| format!("stdout: {e}"))?;
                }
            }
            InputLine::Oversized => {
                writeln!(out, "{}", oversized_line_error()).map_err(|e| format!("stdout: {e}"))?;
            }
        }
        out.flush().map_err(|e| format!("stdout: {e}"))?;
    }
    if daemon.has_pending() {
        for response in daemon.drain() {
            writeln!(out, "{response}").map_err(|e| format!("stdout: {e}"))?;
        }
        out.flush().map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ecmasd: {message}");
            ExitCode::FAILURE
        }
    }
}
