//! `ecmasd` — the Ecmas compile daemon: newline-delimited JSON over
//! stdin/stdout, backed by the `ecmas-serve` worker pool.
//!
//! ```sh
//! ecmasd [--model dd|ls] [--chip min|4x|congested|sufficient]
//!        [--workers N] [--queue N] [--reject] [--cache-mb M]
//! ```
//!
//! One request object per input line (`submit` / `status` / `cancel` /
//! `result` / `drain` / `stats` — see `ecmas_serve::daemon` for the
//! schema), one response object per output line. The content-addressed
//! compile cache defaults on at 64 MiB; `--cache-mb` resizes it and
//! `--cache-mb 0` disables it (`stats` reports the hit/miss/eviction
//! counters either way). At EOF the daemon drains: every
//! unreported job gets its `result` line (the same `CompileReport` JSON
//! `ecmasc --json` emits) followed by a `drained` summary. The job queue
//! is bounded: when it is full, reading stdin stalls — backpressure
//! propagates out through the pipe — unless `--reject` sheds load
//! instead.
//!
//! A second mode generates work rather than serving it:
//!
//! ```sh
//! ecmasd --emit-stress 1000 --seed 7 [--qubits-max 49] [--depth-max 1500]
//!        [--dup-percent 60] [--defect-percent 10] [--cancel-every 50]
//!        [--deadline-ms 60000]
//! ```
//!
//! prints a deterministic seeded `StressWorkload` as a ready-to-pipe job
//! stream (`--dup-percent` makes that percentage of jobs exact repeats
//! of earlier ones, Zipf-skewed toward a few hot circuits — the shape
//! that exercises the compile cache; `--defect-percent` stamps each
//! submit with a seeded fraction of dead tiles so the receiving daemon
//! compiles onto damaged hardware, without perturbing the job stream
//! itself), so a full service exercise is one shell line:
//!
//! ```sh
//! ecmasd --emit-stress 1000 --seed 7 --dup-percent 60 \
//!     | ecmasd --chip congested --model ls
//! ```

use std::io::{BufRead, Write};
use std::process::ExitCode;

use ecmas::serve::daemon::{stress_stream, ChipKind, Daemon, DaemonOptions};
use ecmas::serve::Backpressure;
use ecmas_chip::CodeModel;
use ecmas_circuit::random::StressSpec;

struct Args {
    options: DaemonOptions,
    emit_stress: Option<usize>,
    seed: u64,
    qubits_max: usize,
    depth_max: usize,
    dup_percent: u8,
    defect_percent: u8,
    cancel_every: Option<usize>,
    deadline_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut options = DaemonOptions::default();
    let mut emit_stress = None;
    let mut seed = 0u64;
    let mut qubits_max = 49usize;
    let mut depth_max = 1500usize;
    let mut dup_percent = 0u8;
    let mut defect_percent = 0u8;
    let mut cancel_every = None;
    let mut deadline_ms = None;
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("missing value for {flag}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => {
                options.model = match value(&mut args, "--model")?.as_str() {
                    "dd" | "double-defect" => CodeModel::DoubleDefect,
                    "ls" | "lattice-surgery" => CodeModel::LatticeSurgery,
                    other => return Err(format!("unknown model {other:?} (want dd|ls)")),
                };
            }
            "--chip" => {
                let v = value(&mut args, "--chip")?;
                options.chip = ChipKind::parse(&v).ok_or_else(|| {
                    format!("unknown chip {v:?} (want min|4x|congested|sufficient)")
                })?;
            }
            "--workers" => {
                options.service.workers = parse_num(&value(&mut args, "--workers")?, "--workers")?;
            }
            "--queue" => {
                options.service.queue_capacity =
                    parse_num(&value(&mut args, "--queue")?, "--queue")?;
            }
            "--reject" => options.service.backpressure = Backpressure::Reject,
            "--cache-mb" => {
                let mb: u64 = parse_num(&value(&mut args, "--cache-mb")?, "--cache-mb")?;
                options.service.cache_bytes = mb * 1024 * 1024;
            }
            "--emit-stress" => {
                emit_stress =
                    Some(parse_num(&value(&mut args, "--emit-stress")?, "--emit-stress")?);
            }
            "--seed" => seed = parse_num(&value(&mut args, "--seed")?, "--seed")?,
            "--qubits-max" => {
                qubits_max = parse_num(&value(&mut args, "--qubits-max")?, "--qubits-max")?;
            }
            "--depth-max" => {
                depth_max = parse_num(&value(&mut args, "--depth-max")?, "--depth-max")?;
            }
            "--dup-percent" => {
                dup_percent = parse_num(&value(&mut args, "--dup-percent")?, "--dup-percent")?;
                if dup_percent > 100 {
                    return Err("--dup-percent must be 0..=100".into());
                }
            }
            "--defect-percent" => {
                defect_percent =
                    parse_num(&value(&mut args, "--defect-percent")?, "--defect-percent")?;
                if defect_percent > 100 {
                    return Err("--defect-percent must be 0..=100".into());
                }
            }
            "--cancel-every" => {
                cancel_every =
                    Some(parse_num(&value(&mut args, "--cancel-every")?, "--cancel-every")?);
            }
            "--deadline-ms" => {
                deadline_ms =
                    Some(parse_num(&value(&mut args, "--deadline-ms")?, "--deadline-ms")?);
            }
            "--help" | "-h" => {
                return Err("usage: ecmasd [--model dd|ls] \
                            [--chip min|4x|congested|sufficient] [--workers N] [--queue N] \
                            [--reject] [--cache-mb M] | ecmasd --emit-stress N [--seed S] \
                            [--qubits-max Q] [--depth-max D] [--dup-percent P] \
                            [--defect-percent P] [--cancel-every K] [--deadline-ms MS]"
                    .into());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Args {
        options,
        emit_stress,
        seed,
        qubits_max,
        depth_max,
        dup_percent,
        defect_percent,
        cancel_every,
        deadline_ms,
    })
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("invalid value {value:?} for {flag}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    if let Some(jobs) = args.emit_stress {
        if args.qubits_max < 4 {
            return Err("--qubits-max must be at least 4 (a stress layer needs two pairs)".into());
        }
        if args.depth_max == 0 {
            return Err("--depth-max must be positive".into());
        }
        let base = StressSpec::new(jobs, args.qubits_max, args.seed);
        let spec = StressSpec {
            max_depth: args.depth_max,
            min_depth: base.min_depth.min(args.depth_max),
            dup_percent: args.dup_percent,
            defect_percent: args.defect_percent,
            ..base
        };
        print!("{}", stress_stream(&spec, args.cancel_every, args.deadline_ms));
        return Ok(());
    }

    let mut daemon = Daemon::new(args.options);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        for response in daemon.handle_line(&line) {
            writeln!(out, "{response}").map_err(|e| format!("stdout: {e}"))?;
        }
        out.flush().map_err(|e| format!("stdout: {e}"))?;
    }
    if daemon.has_pending() {
        for response in daemon.drain() {
            writeln!(out, "{response}").map_err(|e| format!("stdout: {e}"))?;
        }
        out.flush().map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ecmasd: {message}");
            ExitCode::FAILURE
        }
    }
}
