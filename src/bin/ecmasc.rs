//! `ecmasc` — command-line front end: compile OpenQASM 2.0 files to
//! surface-code schedules and report the results.
//!
//! ```sh
//! ecmasc program.qasm [--model dd|ls] [--chip min|4x|congested|sufficient]
//!                     [--defects "1,2;3,0"] [--timeline N] [--json] [--analyze]
//! ecmasc program.qasm --fleet min,4x,congested [--model dd|ls] [--json]
//! ecmasc lint program.qasm [--model dd|ls] [--chip …] [--json]
//! ecmasc --jobs list.txt [--workers N] [--repeat N] [--cache-mb M]
//!        [--model …] [--chip …] [--defects …] [--analyze]
//! ```
//!
//! By default the resource-adaptive pipeline runs (`Ecmas::compile_auto`:
//! Ecmas-ReSu when the chip's communication capacity reaches the profiled
//! `ĝPM`, Algorithm 1 otherwise) and a human-readable summary is printed.
//! `--json` instead emits the structured `CompileReport` — per-stage wall
//! times, router path/conflict counters, the bandwidth-adjust decision,
//! the chosen algorithm, and the per-job `resources` estimate — as a
//! single JSON object on stdout, wrapped with the input's circuit/chip
//! facts.
//!
//! `--defects "r,c;r,c"` marks tile slots dead before compiling — the
//! compiler places and routes around them. Coordinates outside the chip
//! are rejected up front. `--fleet a,b,…` instead hands the compiler a
//! list of candidate chips (the same names `--chip` takes) and lets it
//! pick the cheapest one — fewest physical qubits — that compiles the
//! circuit (`Ecmas::compile_auto_fleet`); it conflicts with `--chip` and
//! `--defects`, which pin a single target.
//!
//! `ecmasc lint <file>` runs the static analyzer without compiling:
//! QASM parse errors surface as `E010` diagnostics with line/column
//! spans, and a parsed circuit gets the full circuit-level lint pass
//! against the `--chip` target (dead qubits, self-cancelling CNOT
//! pairs, width-vs-capacity, communication-graph structure). The exit
//! code fails on error-severity findings, so `lint` slots directly
//! into CI. `--analyze` on a compile run additionally verifies the
//! schedule and embeds every finding in the report's `"diagnostics"`
//! array (also printed, one per line, in human mode).
//!
//! `--jobs <file>` switches to the service path: every non-blank,
//! non-`#` line of the file is a QASM path, all of them are submitted to
//! an `ecmas-serve` `CompileService` (`--workers` threads, one per core
//! by default), and one `--json`-shaped line per job is printed in
//! submission order. `--repeat N` submits the whole list N times and
//! `--cache-mb M` fronts the service with the content-addressed compile
//! cache, so repeated paths come back as cache hits (visible in each
//! report's `"cache"` object). For a long-running stdin-driven service,
//! see `ecmasd`.

use std::process::ExitCode;

use ecmas::serve::daemon::{parse_defect_spec, ChipKind};
use ecmas::serve::json;
use ecmas::{
    analyze_encoded, diagnostics_to_json, has_errors, lint_circuit, lint_qasm, validate_encoded,
    viz, ChipFleet, CompileRequest, CompileService, Ecmas, ServiceConfig,
};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::Circuit;

struct Args {
    path: String,
    model: CodeModel,
    chip: ChipKind,
    defects: Vec<(usize, usize)>,
    fleet: Vec<ChipKind>,
    timeline: u64,
    json: bool,
    jobs: bool,
    lint: bool,
    analyze: bool,
    workers: usize,
    repeat: usize,
    cache_bytes: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut model = CodeModel::DoubleDefect;
    let mut chip = None;
    let mut defects = Vec::new();
    let mut fleet = Vec::new();
    let mut timeline = 0;
    let mut json = false;
    let mut jobs = false;
    let mut lint = false;
    let mut analyze = false;
    let mut workers = 0usize;
    let mut repeat = 1usize;
    let mut cache_bytes = 0u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => {
                model = match args.next().as_deref() {
                    Some("dd") | Some("double-defect") => CodeModel::DoubleDefect,
                    Some("ls") | Some("lattice-surgery") => CodeModel::LatticeSurgery,
                    other => return Err(format!("unknown model {other:?} (want dd|ls)")),
                };
            }
            "--chip" => {
                let v = args.next().ok_or("missing value for --chip")?;
                chip = Some(
                    ChipKind::parse(&v)
                        .ok_or(format!("unknown chip {v:?} (want min|4x|congested|sufficient)"))?,
                );
            }
            "--defects" => {
                let v = args.next().ok_or("missing value for --defects")?;
                defects = parse_defect_spec(&v)?;
            }
            "--fleet" => {
                let v = args.next().ok_or("missing value for --fleet")?;
                fleet = v
                    .split(',')
                    .map(str::trim)
                    .filter(|k| !k.is_empty())
                    .map(|k| {
                        ChipKind::parse(k).ok_or(format!(
                            "unknown fleet candidate {k:?} (want min|4x|congested|sufficient)"
                        ))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if fleet.is_empty() {
                    return Err("--fleet wants a comma-separated list of chip kinds".into());
                }
            }
            "--timeline" => {
                timeline = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing/invalid value for --timeline")?;
            }
            "--json" => json = true,
            "--analyze" => analyze = true,
            "lint" if !lint && path.is_none() && !jobs => lint = true,
            "--jobs" => {
                if path.is_some() {
                    return Err("--jobs conflicts with a positional input file".into());
                }
                jobs = true;
                let v = args.next().ok_or("missing value for --jobs")?;
                path = Some(v);
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing/invalid value for --workers")?;
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("missing/invalid value for --repeat (want a positive count)")?;
            }
            "--cache-mb" => {
                let mb: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing/invalid value for --cache-mb")?;
                cache_bytes = mb * 1024 * 1024;
            }
            "--help" | "-h" => {
                return Err("usage: ecmasc <file.qasm> [--model dd|ls] \
                            [--chip min|4x|congested|sufficient] [--defects \"r,c;r,c\"] \
                            [--timeline N] [--json] [--analyze] | \
                            ecmasc <file.qasm> --fleet min,4x,… [--model …] [--json] | \
                            ecmasc lint <file.qasm> [--model …] [--chip …] [--json] | \
                            ecmasc --jobs <list.txt> [--workers N] [--repeat N] [--cache-mb M] \
                            [--model …] [--chip …] [--defects …] [--analyze]"
                    .into());
            }
            other if path.is_none() && !jobs && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("missing input file (see --help)")?;
    if !fleet.is_empty() {
        if chip.is_some() {
            return Err("--fleet conflicts with --chip (the fleet lists the candidates)".into());
        }
        if !defects.is_empty() {
            return Err("--fleet conflicts with --defects (masks pin one target)".into());
        }
        if jobs {
            return Err("--fleet conflicts with --jobs".into());
        }
    }
    if lint && jobs {
        return Err("lint conflicts with --jobs (lint one file at a time)".into());
    }
    if lint && !fleet.is_empty() {
        return Err("lint conflicts with --fleet (lint targets one chip)".into());
    }
    Ok(Args {
        path,
        model,
        chip: chip.unwrap_or(ChipKind::Min),
        defects,
        fleet,
        timeline,
        json,
        jobs,
        lint,
        analyze,
        workers,
        repeat,
        cache_bytes,
    })
}

fn load_circuit(path: &str) -> Result<Circuit, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ecmas_circuit::qasm::parse(&source).map_err(|e| format!("{path}: {e}"))
}

/// The `--json` wrapper line: input facts + chip facts + the report.
fn json_line(
    path: &str,
    circuit: &Circuit,
    chip_kind: ChipKind,
    chip: &Chip,
    report: &str,
) -> String {
    format!(
        "{{\"file\":\"{}\",\"qubits\":{},\"cnots\":{},\"depth\":{},\
         \"model\":\"{}\",\"chip\":{{\"kind\":\"{}\",\"tile_rows\":{},\"tile_cols\":{},\
         \"bandwidth\":{},\"defects\":{},\"live_tiles\":{}}},\"report\":{report}}}",
        json::escape(path),
        circuit.qubits(),
        circuit.cnot_count(),
        circuit.depth(),
        chip.model().label(),
        chip_kind.label(),
        chip.tile_rows(),
        chip.tile_cols(),
        chip.bandwidth(),
        chip.defect_count(),
        chip.live_tiles(),
    )
}

/// Build the `--chip` target for a circuit and apply any `--defects`
/// mask, rejecting coordinates outside the chosen chip up front.
fn build_chip(args: &Args, circuit: &Circuit) -> Result<Chip, String> {
    let chip = args.chip.build(args.model, circuit).map_err(|e| e.to_string())?;
    if args.defects.is_empty() {
        Ok(chip)
    } else {
        let (rows, cols) = (chip.tile_rows(), chip.tile_cols());
        chip.with_defects(&args.defects)
            .map_err(|e| format!("--defects: {e} (chip is {rows}×{cols} tiles)"))
    }
}

/// `ecmasc lint`: parse and static-analyze a QASM file without
/// compiling. Parse failures surface as `E010` diagnostics with
/// line/column spans; a parsed circuit gets the full circuit-level
/// lint pass against the `--chip` target. Exits nonzero when any
/// error-severity diagnostic fires.
fn run_lint(args: &Args) -> Result<(), String> {
    let source = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let (circuit, mut diagnostics) = lint_qasm(&source);
    if let Some(circuit) = &circuit {
        // Re-lint against the actual `--chip` target so the
        // width-vs-capacity check (E012) participates; the chip-free
        // pass from `lint_qasm` is a strict subset of this one.
        if let Ok(chip) = build_chip(args, circuit) {
            diagnostics = lint_circuit(circuit, Some(&chip));
        }
    }
    if args.json {
        println!(
            "{{\"file\":\"{}\",\"diagnostics\":{}}}",
            json::escape(&args.path),
            diagnostics_to_json(&diagnostics)
        );
    } else {
        for d in &diagnostics {
            println!("{}: {d}", args.path);
        }
        let errors = diagnostics.iter().filter(|d| d.is_error()).count();
        println!("{}: {} diagnostic(s), {} error(s)", args.path, diagnostics.len(), errors);
    }
    if has_errors(&diagnostics) {
        return Err(format!("lint: error-severity diagnostics in {}", args.path));
    }
    Ok(())
}

/// `--jobs`: fan a file of QASM paths through the compile service.
fn run_jobs(args: &Args) -> Result<(), String> {
    let list = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let paths: Vec<&str> =
        list.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).collect();
    let service = CompileService::new(ServiceConfig {
        workers: args.workers,
        cache_bytes: args.cache_bytes,
        ..ServiceConfig::default()
    });
    let mut submitted = Vec::new();
    for _ in 0..args.repeat {
        for path in &paths {
            let circuit = load_circuit(path)?;
            let chip = build_chip(args, &circuit)?;
            let handle = service
                .submit(
                    CompileRequest::new(circuit.clone(), chip.clone()).with_analyze(args.analyze),
                )
                .map_err(|e| e.to_string())?;
            submitted.push((*path, circuit, chip, handle));
        }
    }
    for (path, circuit, chip, handle) in submitted {
        let outcome = handle.wait().map_err(|e| format!("{path}: {e}"))?;
        validate_encoded(&circuit, &outcome.encoded)
            .map_err(|e| format!("internal: invalid schedule for {path}: {e}"))?;
        println!("{}", json_line(path, &circuit, args.chip, &chip, &outcome.report.to_json()));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.lint {
        return run_lint(&args);
    }
    if args.jobs {
        return run_jobs(&args);
    }
    let circuit = load_circuit(&args.path)?;
    if !args.json {
        eprintln!(
            "parsed {}: {} qubits, {} CNOTs, {} single-qubit gates, {} T gates, depth α = {}",
            args.path,
            circuit.qubits(),
            circuit.cnot_count(),
            circuit.single_gate_count(),
            circuit.t_count(),
            circuit.depth()
        );
    }

    // `--fleet`: heterogeneous target selection — try candidates from
    // cheapest (fewest physical qubits) to priciest, keep the first that
    // compiles. The selected candidate then flows into the same report
    // and summary paths a pinned `--chip` would.
    let (chip_kind, chip, mut outcome) = if args.fleet.is_empty() {
        let chip = build_chip(&args, &circuit)?;

        // The resource-adaptive session pipeline: profile, map, then pick
        // limited vs ReSu from capacity vs ĝPM. `--chip sufficient` sizes
        // the chip so the auto choice lands on ReSu, as before.
        let outcome = Ecmas::default().compile_auto(&circuit, &chip).map_err(|e| e.to_string())?;
        (args.chip, chip, outcome)
    } else {
        let candidates = args
            .fleet
            .iter()
            .map(|kind| kind.build(args.model, &circuit).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let selection = Ecmas::default()
            .compile_auto_fleet(&circuit, &ChipFleet::new(candidates.clone()))
            .map_err(|e| e.to_string())?;
        let kind = args.fleet[selection.chip_index];
        let chip = candidates[selection.chip_index].clone();
        if !args.json {
            eprintln!(
                "fleet: selected candidate {} of {} ({})",
                selection.chip_index + 1,
                candidates.len(),
                kind.label(),
            );
        }
        (kind, chip, selection.outcome)
    };
    validate_encoded(&circuit, &outcome.encoded)
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;

    if args.analyze {
        // Observe-only: the schedule and its fingerprint are already
        // final; this just fills the report's diagnostics array.
        let mut diags = lint_circuit(&circuit, Some(&chip));
        diags.extend(analyze_encoded(&circuit, &outcome.encoded));
        outcome.report.diagnostics = diags;
    }

    if args.json {
        println!(
            "{}",
            json_line(&args.path, &circuit, chip_kind, &chip, &outcome.report.to_json())
        );
        return Ok(());
    }

    let report = &outcome.report;
    println!(
        "model={} chip={} ({}×{} tiles, bandwidth {}, {} dead) algorithm={} Δ = {} cycles \
         ({} events, {} cut modifications)",
        chip.model().label(),
        chip_kind.label(),
        chip.tile_rows(),
        chip.tile_cols(),
        chip.bandwidth(),
        chip.defect_count(),
        report.algorithm.label(),
        report.cycles,
        report.events,
        report.cut_modifications,
    );
    println!(
        "ĝPM={} capacity={} restarts={} bandwidth-adjust={} | profile {:.2?} map {:.2?} \
         schedule {:.2?} | router: {} paths, {} conflicts ({} failed searches, \
         {} cache hits)",
        report.gpm,
        report.capacity,
        report.placement_restarts,
        report.bandwidth_adjust.label(),
        report.timings.profile,
        report.timings.map,
        report.timings.schedule,
        report.router.paths_found,
        report.router.conflicts,
        report.router.failed_searches,
        report.router.cache_hits,
    );
    for d in &report.diagnostics {
        println!("{d}");
    }
    if args.timeline > 0 {
        print!("{}", viz::render_timeline(&outcome.encoded, args.timeline));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ecmasc: {message}");
            ExitCode::FAILURE
        }
    }
}
