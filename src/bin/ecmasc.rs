//! `ecmasc` — command-line front end: compile an OpenQASM 2.0 file to a
//! surface-code schedule and report the result.
//!
//! ```sh
//! ecmasc program.qasm [--model dd|ls] [--chip min|4x|sufficient] [--timeline N]
//! ```

use std::process::ExitCode;

use ecmas::{para_finding, validate_encoded, viz, Ecmas};
use ecmas_chip::{Chip, CodeModel};

struct Args {
    path: String,
    model: CodeModel,
    chip: String,
    timeline: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut model = CodeModel::DoubleDefect;
    let mut chip = "min".to_string();
    let mut timeline = 0;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => {
                model = match args.next().as_deref() {
                    Some("dd") | Some("double-defect") => CodeModel::DoubleDefect,
                    Some("ls") | Some("lattice-surgery") => CodeModel::LatticeSurgery,
                    other => return Err(format!("unknown model {other:?} (want dd|ls)")),
                };
            }
            "--chip" => {
                chip = args.next().ok_or("missing value for --chip")?;
                if !matches!(chip.as_str(), "min" | "4x" | "sufficient") {
                    return Err(format!("unknown chip {chip:?} (want min|4x|sufficient)"));
                }
            }
            "--timeline" => {
                timeline = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing/invalid value for --timeline")?;
            }
            "--help" | "-h" => {
                return Err("usage: ecmasc <file.qasm> [--model dd|ls] [--chip min|4x|sufficient] [--timeline N]".into());
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Args { path: path.ok_or("missing input file (see --help)")?, model, chip, timeline })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let source = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let circuit = ecmas_circuit::qasm::parse(&source).map_err(|e| e.to_string())?;
    eprintln!(
        "parsed {}: {} qubits, {} CNOTs, {} single-qubit gates, {} T gates, depth α = {}",
        args.path,
        circuit.qubits(),
        circuit.cnot_count(),
        circuit.single_gate_count(),
        circuit.t_count(),
        circuit.depth()
    );

    let chip = match args.chip.as_str() {
        "min" => Chip::min_viable(args.model, circuit.qubits(), 3),
        "4x" => Chip::four_x(args.model, circuit.qubits(), 3),
        _ => {
            let gpm = para_finding(&circuit.dag()).gpm();
            Chip::sufficient(args.model, circuit.qubits(), gpm.max(1), 3)
        }
    }
    .map_err(|e| e.to_string())?;

    let encoded = if args.chip == "sufficient" {
        Ecmas::default().compile_resu(&circuit, &chip)
    } else {
        Ecmas::default().compile(&circuit, &chip)
    }
    .map_err(|e| e.to_string())?;
    validate_encoded(&circuit, &encoded).map_err(|e| format!("internal: invalid schedule: {e}"))?;

    println!(
        "model={} chip={} ({}×{} tiles, bandwidth {}) Δ = {} cycles ({} events, {} cut modifications)",
        args.model.label(),
        args.chip,
        chip.tile_rows(),
        chip.tile_cols(),
        chip.bandwidth(),
        encoded.cycles(),
        encoded.events().len(),
        encoded.modification_count(),
    );
    if args.timeline > 0 {
        print!("{}", viz::render_timeline(&encoded, args.timeline));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ecmasc: {message}");
            ExitCode::FAILURE
        }
    }
}
