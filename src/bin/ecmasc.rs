//! `ecmasc` — command-line front end: compile an OpenQASM 2.0 file to a
//! surface-code schedule and report the result.
//!
//! ```sh
//! ecmasc program.qasm [--model dd|ls] [--chip min|4x|congested|sufficient]
//!                     [--timeline N] [--json]
//! ```
//!
//! By default the resource-adaptive pipeline runs (`Ecmas::compile_auto`:
//! Ecmas-ReSu when the chip's communication capacity reaches the profiled
//! `ĝPM`, Algorithm 1 otherwise) and a human-readable summary is printed.
//! `--json` instead emits the structured `CompileReport` — per-stage wall
//! times, router path/conflict counters, the bandwidth-adjust decision,
//! and the chosen algorithm — as a single JSON object on stdout, wrapped
//! with the input's circuit/chip facts.

use std::process::ExitCode;

use ecmas::{validate_encoded, viz, Ecmas};
use ecmas_chip::{Chip, CodeModel};

struct Args {
    path: String,
    model: CodeModel,
    chip: String,
    timeline: u64,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut model = CodeModel::DoubleDefect;
    let mut chip = "min".to_string();
    let mut timeline = 0;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => {
                model = match args.next().as_deref() {
                    Some("dd") | Some("double-defect") => CodeModel::DoubleDefect,
                    Some("ls") | Some("lattice-surgery") => CodeModel::LatticeSurgery,
                    other => return Err(format!("unknown model {other:?} (want dd|ls)")),
                };
            }
            "--chip" => {
                chip = args.next().ok_or("missing value for --chip")?;
                if !matches!(chip.as_str(), "min" | "4x" | "congested" | "sufficient") {
                    return Err(format!(
                        "unknown chip {chip:?} (want min|4x|congested|sufficient)"
                    ));
                }
            }
            "--timeline" => {
                timeline = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing/invalid value for --timeline")?;
            }
            "--json" => json = true,
            "--help" | "-h" => {
                return Err("usage: ecmasc <file.qasm> [--model dd|ls] \
                            [--chip min|4x|congested|sufficient] [--timeline N] [--json]"
                    .into());
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Args { path: path.ok_or("missing input file (see --help)")?, model, chip, timeline, json })
}

/// Minimal JSON string escaping for the few free-text fields we emit.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let source = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let circuit = ecmas_circuit::qasm::parse(&source).map_err(|e| e.to_string())?;
    if !args.json {
        eprintln!(
            "parsed {}: {} qubits, {} CNOTs, {} single-qubit gates, {} T gates, depth α = {}",
            args.path,
            circuit.qubits(),
            circuit.cnot_count(),
            circuit.single_gate_count(),
            circuit.t_count(),
            circuit.depth()
        );
    }

    let chip = match args.chip.as_str() {
        "min" => Chip::min_viable(args.model, circuit.qubits(), 3),
        "4x" => Chip::four_x(args.model, circuit.qubits(), 3),
        "congested" => Chip::congested(args.model, circuit.qubits(), 3),
        _ => {
            let gpm = ecmas::para_finding(&circuit.dag()).gpm();
            Chip::sufficient(args.model, circuit.qubits(), gpm.max(1), 3)
        }
    }
    .map_err(|e| e.to_string())?;

    // The resource-adaptive session pipeline: profile, map, then pick
    // limited vs ReSu from capacity vs ĝPM. `--chip sufficient` sizes the
    // chip so the auto choice lands on ReSu, as before.
    let outcome = Ecmas::default().compile_auto(&circuit, &chip).map_err(|e| e.to_string())?;
    validate_encoded(&circuit, &outcome.encoded)
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;

    if args.json {
        println!(
            "{{\"file\":\"{}\",\"qubits\":{},\"cnots\":{},\"depth\":{},\
             \"model\":\"{}\",\"chip\":{{\"kind\":\"{}\",\"tile_rows\":{},\"tile_cols\":{},\
             \"bandwidth\":{}}},\"report\":{}}}",
            json_escape(&args.path),
            circuit.qubits(),
            circuit.cnot_count(),
            circuit.depth(),
            args.model.label(),
            json_escape(&args.chip),
            chip.tile_rows(),
            chip.tile_cols(),
            chip.bandwidth(),
            outcome.report.to_json(),
        );
        return Ok(());
    }

    let report = &outcome.report;
    println!(
        "model={} chip={} ({}×{} tiles, bandwidth {}) algorithm={} Δ = {} cycles \
         ({} events, {} cut modifications)",
        args.model.label(),
        args.chip,
        chip.tile_rows(),
        chip.tile_cols(),
        chip.bandwidth(),
        report.algorithm.label(),
        report.cycles,
        report.events,
        report.cut_modifications,
    );
    println!(
        "ĝPM={} capacity={} restarts={} bandwidth-adjust={} | profile {:.2?} map {:.2?} \
         schedule {:.2?} | router: {} paths, {} conflicts",
        report.gpm,
        report.capacity,
        report.placement_restarts,
        report.bandwidth_adjust.label(),
        report.timings.profile,
        report.timings.map,
        report.timings.schedule,
        report.router.paths_found,
        report.router.conflicts,
    );
    if args.timeline > 0 {
        print!("{}", viz::render_timeline(&outcome.encoded, args.timeline));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ecmasc: {message}");
            ExitCode::FAILURE
        }
    }
}
